package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gpclust/internal/lint/cfg"
)

// VClockTaint tracks wall-clock-sourced values through assignments and
// flags them flowing into virtual-clock quantities. The wallclock rule
// polices WHERE the host clock may be read (the allowlisted stopwatch
// wrappers); this rule polices where those readings may GO: a wrapper's
// result is fine in a log line or a Result.Wall field, but the moment it
// reaches an obs span timestamp, a gpusim device-clock knob, or a sched
// cost-model parameter, host timing has leaked into state the determinism
// contract says must be a function of the seed. That is the exact bug
// class the PR 5/PR 6 trace work guards by convention only.
//
// Sources: calls to time.Now/Since/Until, and calls to any function on
// the WallclockAllow list (their results ARE wall time, that is their
// job). Taint propagates through assignments, arithmetic, conversions,
// and range statements along the function's control-flow graph, so a
// value laundered through a loop-carried accumulator is still caught.
// Sinks: arguments to functions declared in internal/obs, internal/gpusim
// or internal/sched whose parameter name is nanosecond-ish ("ns" or a
// *Ns suffix), and writes to Ns-named fields of types declared there —
// except parameters and fields that say "wall" in their name, which are
// the sanctioned host-time lane.
var VClockTaint = &Analyzer{
	Name: ruleVClockTaint,
	Doc:  "wall-clock-sourced value flows into a virtual-clock or cost-model parameter",
	Run:  runVClockTaint,
}

// vclockSinkPkgs are the package suffixes whose Ns-named parameters and
// fields are virtual-clock quantities.
var vclockSinkPkgs = []string{"internal/obs", "internal/gpusim", "internal/sched"}

func runVClockTaint(cfg_ *Config, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	analyze := func(body *ast.BlockStmt) {
		t := &taintFlow{cfg: cfg_, pkg: pkg}
		g := cfg.New(body)
		in := cfg.Solve[taintSet](g, t)
		cfg.Replay[taintSet](g, t, in, func(_ *cfg.Block, n ast.Node, s taintSet) {
			diags = append(diags, t.checkSinks(n, s)...)
		})
	}
	forEachFunc(pkg, func(fd *ast.FuncDecl, _ string) {
		analyze(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				analyze(lit.Body)
			}
			return true
		})
	})
	return diags
}

// taintSet is the dataflow state: the set of variables that may hold a
// wall-clock-derived value at this program point.
type taintSet map[types.Object]bool

type taintFlow struct {
	cfg *Config
	pkg *Package
}

func (t *taintFlow) Entry() taintSet { return make(taintSet) }

func (t *taintFlow) Clone(s taintSet) taintSet {
	c := make(taintSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (t *taintFlow) Join(a, b taintSet) taintSet {
	j := t.Clone(a)
	for k := range b {
		j[k] = true
	}
	return j
}

func (t *taintFlow) Equal(a, b taintSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Refine: branch conditions carry no taint information.
func (t *taintFlow) Refine(_ ast.Expr, _ bool, s taintSet) taintSet { return s }

func (t *taintFlow) Transfer(n ast.Node, s taintSet) taintSet {
	switch n := n.(type) {
	case *ast.AssignStmt:
		t.transferAssign(n, s)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == len(vs.Names) {
					for i, name := range vs.Names {
						t.setTaint(name, t.tainted(vs.Values[i], s), s)
					}
				} else if len(vs.Values) == 1 {
					v := t.tainted(vs.Values[0], s)
					for _, name := range vs.Names {
						t.setTaint(name, v, s)
					}
				}
			}
		}
	case *ast.RangeStmt:
		// Ranging over a tainted collection taints the iteration vars.
		if t.tainted(n.X, s) {
			if id, ok := n.Key.(*ast.Ident); ok {
				t.setTaint(id, true, s)
			}
			if id, ok := n.Value.(*ast.Ident); ok {
				t.setTaint(id, true, s)
			}
		}
	}
	return s
}

func (t *taintFlow) transferAssign(as *ast.AssignStmt, s taintSet) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		// x += expr and friends: the target keeps any taint it had and
		// picks up the operand's.
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if t.tainted(as.Rhs[0], s) {
					t.setTaint(id, true, s)
				}
			}
		}
		return
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				t.setTaint(id, t.tainted(as.Rhs[i], s), s)
			}
		}
		return
	}
	// Multi-value form: the whole tuple is tainted if the source is.
	if len(as.Rhs) == 1 {
		v := t.tainted(as.Rhs[0], s)
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				t.setTaint(id, v, s)
			}
		}
	}
}

// setTaint applies a strong update to a plain identifier.
func (t *taintFlow) setTaint(id *ast.Ident, v bool, s taintSet) {
	if id.Name == "_" {
		return
	}
	obj := t.pkg.Info.Defs[id]
	if obj == nil {
		obj = t.pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if v {
		s[obj] = true
	} else {
		delete(s, obj)
	}
}

// tainted reports whether evaluating the expression may yield a
// wall-clock-derived value under the current state: it mentions a tainted
// variable or contains a wall-clock source call. Function literals are
// opaque values, not evaluations.
func (t *taintFlow) tainted(e ast.Expr, s taintSet) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := t.pkg.Info.Uses[n]; obj != nil && s[obj] {
				found = true
			}
		case *ast.CallExpr:
			if t.isWallSource(n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWallSource recognizes the taint sources: the time package's clock
// readers and every function on the WallclockAllow list.
func (t *taintFlow) isWallSource(call *ast.CallExpr) bool {
	if f := pkgFuncObj(t.pkg, call.Fun, "time"); f != nil && wallclockFuncs[f.Name()] {
		return true
	}
	if f := pkgFuncObj(t.pkg, call.Fun, ""); f != nil {
		return t.cfg.wallclockAllowed(f.Pkg().Path(), f.Name())
	}
	if m := methodObj(t.pkg, call.Fun); m != nil && m.Pkg() != nil {
		if recv := m.Type().(*types.Signature).Recv(); recv != nil {
			if _, recvName := typePath(recv.Type()); recvName != "" {
				return t.cfg.wallclockAllowed(m.Pkg().Path(), recvName+"."+m.Name())
			}
		}
	}
	// A local closure or ident call inside an allowlisted wrapper's own
	// package: resolve plain idents to package-level functions too.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if f, ok := t.pkg.Info.Uses[id].(*types.Func); ok && f.Pkg() != nil {
			return t.cfg.wallclockAllowed(f.Pkg().Path(), f.Name())
		}
	}
	return false
}

// checkSinks inspects one statement for tainted values reaching
// virtual-clock parameters or fields. Nested blocks and function literals
// belong to other CFG nodes and are skipped.
func (t *taintFlow) checkSinks(stmt ast.Node, s taintSet) []Diagnostic {
	var diags []Diagnostic
	shallowInspect(stmt, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			diags = append(diags, t.checkCallSink(n, s)...)
		case *ast.AssignStmt:
			diags = append(diags, t.checkFieldWrite(n, s)...)
		case *ast.CompositeLit:
			diags = append(diags, t.checkCompositeSink(n, s)...)
		}
	})
	return diags
}

// shallowInspect walks the statement's expressions without descending
// into nested blocks (they are separate CFG nodes) or function literals
// (separate functions).
func shallowInspect(root ast.Node, f func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		case nil:
			return true
		}
		f(n)
		return true
	})
}

// nsParam reports whether a parameter or field name denotes a
// virtual-clock nanosecond quantity.
func nsParam(name string) bool {
	if strings.Contains(strings.ToLower(name), "wall") {
		return false
	}
	return name == "ns" || strings.HasSuffix(name, "Ns") || strings.Contains(name, "NsPer")
}

// vclockCallee resolves a call to a function or method declared in one of
// the virtual-clock packages, returning its signature and display name.
func (t *taintFlow) vclockCallee(call *ast.CallExpr) (*types.Signature, string) {
	var f *types.Func
	if pf := pkgFuncObj(t.pkg, call.Fun, ""); pf != nil {
		f = pf
	} else if m := methodObj(t.pkg, call.Fun); m != nil {
		f = m
	}
	if f == nil || f.Pkg() == nil || !matchAny(f.Pkg().Path(), vclockSinkPkgs) {
		return nil, ""
	}
	return f.Type().(*types.Signature), f.Name()
}

func (t *taintFlow) checkCallSink(call *ast.CallExpr, s taintSet) []Diagnostic {
	sig, name := t.vclockCallee(call)
	if sig == nil {
		return nil
	}
	params := sig.Params()
	var diags []Diagnostic
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		pname := params.At(pi).Name()
		if nsParam(pname) && t.tainted(arg, s) {
			diags = append(diags, diag(t.pkg, ruleVClockTaint, arg,
				"wall-clock-derived value reaches virtual-clock parameter %q of %s: virtual timestamps must come from the device clock or cost model", pname, name))
		}
	}
	return diags
}

// checkFieldWrite flags `x.SomethingNs = tainted` (possibly through an
// index) when the field belongs to a virtual-clock package's type.
func (t *taintFlow) checkFieldWrite(as *ast.AssignStmt, s taintSet) []Diagnostic {
	var diags []Diagnostic
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		fieldName, ownerType := t.vclockField(lhs)
		if fieldName == "" || !t.tainted(as.Rhs[i], s) {
			continue
		}
		diags = append(diags, diag(t.pkg, ruleVClockTaint, lhs,
			"wall-clock-derived value stored into virtual-clock field %s.%s", ownerType, fieldName))
	}
	return diags
}

// vclockField resolves an lvalue to an Ns-named field (or Ns-named map,
// e.g. KernelNsPerUnit[...]) of a type declared in a virtual-clock
// package.
func (t *taintFlow) vclockField(lhs ast.Expr) (field, typeName string) {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.ParenExpr:
			lhs = e.X
			continue
		case *ast.SelectorExpr:
			sel, ok := t.pkg.Info.Selections[e]
			if !ok || sel.Kind() != types.FieldVal {
				return "", ""
			}
			v, ok := sel.Obj().(*types.Var)
			if !ok || v.Pkg() == nil || !matchAny(v.Pkg().Path(), vclockSinkPkgs) || !nsParam(v.Name()) {
				return "", ""
			}
			_, tn := typePath(t.pkg.Info.TypeOf(e.X))
			return v.Name(), tn
		default:
			return "", ""
		}
	}
}

// checkCompositeSink flags Ns-named fields initialized with tainted
// values in composite literals of virtual-clock types.
func (t *taintFlow) checkCompositeSink(cl *ast.CompositeLit, s taintSet) []Diagnostic {
	typ := t.pkg.Info.TypeOf(cl)
	pkgPath, typeName := typePath(typ)
	if pkgPath == "" || !matchAny(pkgPath, vclockSinkPkgs) {
		return nil
	}
	var diags []Diagnostic
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !nsParam(key.Name) {
			continue
		}
		if t.tainted(kv.Value, s) {
			diags = append(diags, diag(t.pkg, ruleVClockTaint, kv.Value,
				"wall-clock-derived value stored into virtual-clock field %s.%s", typeName, key.Name))
		}
	}
	return diags
}
