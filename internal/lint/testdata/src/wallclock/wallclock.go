// Package wallclock is the wallclock fixture. DefaultConfig allowlists
// newStopwatch and stopwatch.lap in this package — but not stopwatch.total —
// so the rule's function-granular gating is exercised in both directions.
package wallclock

import "time"

type stopwatch struct {
	start, mark time.Time
}

// newStopwatch is an allowlisted timing wrapper: its time.Now is sanctioned.
func newStopwatch() *stopwatch {
	now := time.Now()
	return &stopwatch{start: now, mark: now}
}

// lap is allowlisted too.
func (w *stopwatch) lap() int64 {
	now := time.Now()
	d := now.Sub(w.mark)
	w.mark = now
	return d.Nanoseconds()
}

// total is deliberately NOT on the fixture allowlist.
func (w *stopwatch) total() int64 {
	return time.Since(w.start).Nanoseconds() // want wallclock "time.Since outside"
}

func measure() int64 {
	t0 := time.Now() // want wallclock "time.Now outside"
	busyWork()
	return time.Since(t0).Nanoseconds() // want wallclock "time.Since outside"
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want wallclock "time.Until outside"
}

// virtualOnly does duration arithmetic without reading the clock: fine.
func virtualOnly(d time.Duration) time.Duration {
	return 2 * d
}

func busyWork() {}
