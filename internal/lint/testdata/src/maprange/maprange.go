// Package maprange is the maprange-order fixture: its import path is listed
// in DefaultConfig.DeterminismCritical, so ordered output produced inside a
// range over a map is a finding unless a sort restores the order downstream.
package maprange

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// collectUnsorted emits clusters in map iteration order — the exact bug the
// rule exists for.
func collectUnsorted(byRoot map[uint32][]uint32) [][]uint32 {
	var clusters [][]uint32
	for _, vs := range byRoot {
		clusters = append(clusters, vs) // want maprange-order "no subsequent sort"
	}
	return clusters
}

// collectSorted is the sanctioned pattern (core.reportOverlapping): the
// append order is erased by the sort before anyone consumes the slice.
func collectSorted(byRoot map[uint32][]uint32) [][]uint32 {
	var clusters [][]uint32
	for _, vs := range byRoot {
		clusters = append(clusters, vs)
	}
	sort.Slice(clusters, func(i, j int) bool { return len(clusters[i]) > len(clusters[j]) })
	return clusters
}

func sendAll(counts map[string]int, ch chan<- int) {
	for _, v := range counts {
		ch <- v // want maprange-order "channel send"
	}
}

func dump(w io.Writer, counts map[string]int) {
	for k, v := range counts {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want maprange-order "fmt.Fprintf"
	}
}

func writeKeys(sb *strings.Builder, m map[string]int) {
	for k := range m {
		sb.WriteString(k) // want maprange-order "WriteString"
	}
}

// loopLocal appends only to a slice declared inside the loop body: each
// iteration's order is self-contained, the map contributes none.
func loopLocal(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}

// sliceRange ranges over a slice, which iterates deterministically.
func sliceRange(vs []int) []int {
	var out []int
	for _, v := range vs {
		out = append(out, v)
	}
	return out
}
