// Package configdrift is the config-drift fixture. It imports the
// simulated device while being deliberately absent from the fixture
// configuration's DeterminismCritical and Generator lists — the
// classification gap the import audit exists to catch — and carries one
// ignore directive that excuses nothing (stale) next to one that excuses
// a real finding (used, and therefore silent).
package configdrift

import "gpclust/internal/gpusim" // want config-drift "neither DeterminismCritical nor Generator"

// scratchSum is disciplined device code: the finding against this package
// is about its missing classification, not its memory handling.
func scratchSum(dev *gpusim.Device) error {
	buf, err := dev.Malloc(64)
	if err != nil {
		return err
	}
	defer buf.Free()
	return nil
}

// staleExcuse carries a well-formed directive with nothing under it: the
// wallclock rule has no finding on that line, so the directive is drift.
func staleExcuse() int {
	x := 1
	// want:+1 config-drift "stale ignore directive"
	x++ //gpclint:ignore wallclock this line reads no clock at all
	return x
}

func mayFail() error { return nil }

// usedExcuse shows the contrast: this directive suppresses a live
// unchecked-error finding, so the stale audit leaves it alone.
func usedExcuse() {
	mayFail() //gpclint:ignore unchecked-error fixture demonstrates a used directive staying silent
}
