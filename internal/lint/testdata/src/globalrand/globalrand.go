// Package globalrand is the global-rand fixture: it is NOT in
// DefaultConfig.Generator, so package-level math/rand calls are findings
// while constructors and injected *rand.Rand methods stay legal.
package globalrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func shuffleIDs(ids []int) {
	rand.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] }) // want global-rand "rand.Shuffle"
}

func pick(n int) int {
	return rand.Intn(n) // want global-rand "rand.Intn"
}

func pickV2(n int) int {
	return randv2.IntN(n) // want global-rand "rand.IntN"
}

// seeded uses only constructors: building an explicit source is exactly the
// sanctioned pattern.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// injected consumes a caller-provided source; methods on it are fine.
func injected(r *rand.Rand, n int) int {
	return r.Intn(n)
}
