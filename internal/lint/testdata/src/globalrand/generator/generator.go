// Package generator is listed in DefaultConfig.Generator: data-generation
// code may use the package-level math/rand functions, so nothing here is a
// finding.
package generator

import "math/rand"

func Noise(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rand.Float64()
	}
	return out
}
