// Package atomicmix is the atomic-mix fixture: the hits field is accessed
// both through sync/atomic and plainly, which is a data race; done is only
// ever touched atomically and the typed atomic.Int64 field cannot be mixed
// at all.
package atomicmix

import "sync/atomic"

type counter struct {
	hits uint64
	done uint32
}

func (c *counter) incr() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) read() uint64 {
	return c.hits // want atomic-mix "hits"
}

func (c *counter) reset() {
	c.hits = 0 // want atomic-mix "hits"
}

// finish and isDone access done exclusively through sync/atomic: consistent,
// so no finding.
func (c *counter) finish() {
	atomic.StoreUint32(&c.done, 1)
}

func (c *counter) isDone() bool {
	return atomic.LoadUint32(&c.done) != 0
}

// typed uses an atomic.Int64 field — the preferred fix: a plain access is
// inexpressible, so the rule has nothing to say.
type typed struct {
	n atomic.Int64
}

func (t *typed) bump()      { t.n.Add(1) }
func (t *typed) get() int64 { return t.n.Load() }

// localAtomic operates on a local variable, not a struct field: out of this
// rule's scope (the escape-to-shared-state risk it polices needs a field).
func localAtomic() uint32 {
	var flag uint32
	atomic.StoreUint32(&flag, 1)
	return flag
}
