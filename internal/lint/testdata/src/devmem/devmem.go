// Package devmem is the devmem fixture: gpusim allocations must have a Free
// reachable on every return path. The positives leak on an error path, an
// early return, and a fall-through end; the negatives cover defer, closure
// cleanup, err != nil guards, and the two ownership transfers (returning the
// buffer, storing it).
package devmem

import "gpclust/internal/gpusim"

// leakOnErrorPath frees both buffers on success but leaks scratch when the
// second allocation fails — exactly the path only OOM ever exercises.
func leakOnErrorPath(dev *gpusim.Device) error {
	scratch, err := dev.Malloc(1 << 10)
	if err != nil {
		return err
	}
	out, err := dev.Malloc(1 << 11)
	if err != nil {
		return err // want devmem "scratch"
	}
	out.Free()
	scratch.Free()
	return nil
}

// earlyReturnLeak frees on the main path but forgets the skip path.
func earlyReturnLeak(dev *gpusim.Device, skip bool) error {
	buf, err := dev.Malloc(512)
	if err != nil {
		return err
	}
	if skip {
		return nil // want devmem "buf"
	}
	buf.Free()
	return nil
}

// fallThroughLeak never frees at all: reported at the closing brace.
func fallThroughLeak(dev *gpusim.Device) {
	tmp := dev.MustMalloc(64)
	fill(tmp, 0)
} // want devmem "tmp"

// deferFree is the canonical clean pattern.
func deferFree(dev *gpusim.Device) error {
	buf, err := dev.Malloc(128)
	if err != nil {
		return err
	}
	defer buf.Free()
	return launch(dev, buf)
}

// closureCleanup frees through a deferred local closure, the idiom
// core/gpupipeline.go uses for its buffer sets.
func closureCleanup(dev *gpusim.Device) error {
	a, err := dev.Malloc(32)
	if err != nil {
		return err
	}
	b, err := dev.Malloc(32)
	if err != nil {
		a.Free()
		return err
	}
	freeAll := func() {
		a.Free()
		b.Free()
	}
	defer freeAll()
	return launch(dev, a)
}

// allocFor returns the buffer: ownership transfers to the caller.
func allocFor(dev *gpusim.Device, n int) (*gpusim.Buffer, error) {
	buf, err := dev.Malloc(n)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

type stage struct {
	data *gpusim.Buffer
}

// attach stores the buffer into a struct: the stage owns it now, tracking
// ends.
func (s *stage) attach(dev *gpusim.Device) error {
	buf, err := dev.Malloc(256)
	if err != nil {
		return err
	}
	s.data = buf
	return nil
}

func fill(b *gpusim.Buffer, v uint32) {}

func launch(dev *gpusim.Device, b *gpusim.Buffer) error { return nil }
