// Package devmemloop is the path-sensitivity fixture for devmem v2: leaks
// that only exist on paths a statement-order walk never follows — a
// continue before the Free carrying a live buffer around a loop back edge,
// a switch case that forgets its cleanup, and an allocation inside a
// function literal. The negatives exercise the same control flow with the
// Free on every path, so the analyzer has to track paths, not patterns.
package devmemloop

import "gpclust/internal/gpusim"

// loopContinueLeak is the v1 blind spot from DESIGN §6: when the last
// element hits the continue, its buffer is still live at the return.
func loopContinueLeak(dev *gpusim.Device, sizes []int) error {
	for _, n := range sizes {
		buf, err := dev.Malloc(n)
		if err != nil {
			return err
		}
		if n%2 == 0 {
			continue
		}
		buf.Free()
	}
	return nil // want devmem "buf"
}

// switchCaseLeak frees in two of three arms; the middle one leaks.
func switchCaseLeak(dev *gpusim.Device, mode int) error {
	buf := dev.MustMalloc(256)
	switch mode {
	case 0:
		buf.Free()
	case 1:
		bump(buf)
	default:
		buf.Free()
	}
	return nil // want devmem "buf"
}

// literalLeak allocates inside a goroutine body and never frees; the
// literal is a function in its own right and is checked like one.
func literalLeak(dev *gpusim.Device) {
	go func() {
		tmp, err := dev.Malloc(32)
		if err != nil {
			return
		}
		bump(tmp)
	}() // want devmem "tmp"
}

// breakBeforeFree leaks on the labeled break path only.
func breakBeforeFree(dev *gpusim.Device, sizes []int) error {
outer:
	for _, n := range sizes {
		buf, err := dev.Malloc(n)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if i == 7 {
				break outer
			}
		}
		buf.Free()
	}
	return nil // want devmem "buf"
}

// loopContinueFreed is the clean mirror of loopContinueLeak: the continue
// path frees first, so every way around the loop is balanced.
func loopContinueFreed(dev *gpusim.Device, sizes []int) error {
	for _, n := range sizes {
		buf, err := dev.Malloc(n)
		if err != nil {
			return err
		}
		if n%2 == 0 {
			buf.Free()
			continue
		}
		bump(buf)
		buf.Free()
	}
	return nil
}

// switchAllArmsFree frees in every arm, including default.
func switchAllArmsFree(dev *gpusim.Device, mode int) {
	buf := dev.MustMalloc(64)
	switch mode {
	case 0:
		buf.Free()
	default:
		bump(buf)
		buf.Free()
	}
}

// deferInLoopBody registers the Free inside an immediately-invoked
// literal per iteration — the per-iteration scope the real pipelines use.
func deferInLoopBody(dev *gpusim.Device, sizes []int) error {
	for _, n := range sizes {
		if err := func() error {
			buf, err := dev.Malloc(n)
			if err != nil {
				return err
			}
			defer buf.Free()
			bump(buf)
			return nil
		}(); err != nil {
			return err
		}
	}
	return nil
}

// gotoRetry re-runs the allocation after a goto; both the retry path and
// the straight path free before returning.
func gotoRetry(dev *gpusim.Device) error {
	tries := 0
retry:
	buf, err := dev.Malloc(128)
	if err != nil {
		tries++
		if tries < 3 {
			goto retry
		}
		return err
	}
	bump(buf)
	buf.Free()
	return nil
}

func bump(b *gpusim.Buffer) {}
