// Package vclocktaint is the vclock-taint fixture: wall-clock-sourced
// values must not flow into virtual-clock or cost-model parameters.
// lapWall is allowlisted in FixtureConfig — reading the wall clock there
// is sanctioned — but its RESULT is still wall time, and the positives
// push that result (directly, through arithmetic, through a loop-carried
// accumulator, through a branch join) into obs span timestamps and sched
// cost-model knobs. The negatives keep wall time in the wall lane:
// virtual quantities from plain parameters, overwritten taint, and the
// Span.WallNs field that exists precisely to hold host time.
package vclocktaint

import (
	"time"

	"gpclust/internal/obs"
	"gpclust/internal/sched"
)

// lapWall is this fixture's allowlisted wall reader (see FixtureConfig).
func lapWall(since time.Time) float64 {
	return float64(time.Since(since).Nanoseconds())
}

// spanFromWall stamps a span with wall readings: both timestamp
// parameters are virtual-clock sinks.
func spanFromWall(r *obs.Recorder, t0 time.Time) {
	start := lapWall(t0)
	end := lapWall(t0)
	r.Span(obs.TrackPhases, "align", start, end) // want vclock-taint "startNs" // want vclock-taint "endNs"
}

// calibrateFromWall launders wall time through a loop-carried accumulator
// and arithmetic before feeding the cost model: still caught, because the
// taint flows around the back edge with the state.
func calibrateFromWall(m *sched.Model, t0 time.Time, n int) {
	total := 0.0
	for i := 0; i < n; i++ {
		total += lapWall(t0)
	}
	m.CalibrateKernel("shingle", total/float64(n), float64(n), 32) // want vclock-taint "bodyNs"
}

// polluteModel writes wall time straight into the per-unit kernel cost
// table — the knob every later batch plan is priced with.
func polluteModel(m *sched.Model, t0 time.Time) {
	m.KernelNsPerUnit["minhash"] = lapWall(t0) // want vclock-taint "KernelNsPerUnit"
}

// rawClock reads the clock without any allowlist cover: the wallclock
// rule flags the read, and the taint rule flags where it went.
func rawClock(r *obs.Recorder) {
	at := float64(time.Now().UnixNano())   // want wallclock "time.Now"
	r.Instant(obs.TrackPhases, "mark", at) // want vclock-taint "atNs"
}

// branchJoin taints only one arm; the join keeps the may-taint, as it
// must — half the runs would stamp host time.
func branchJoin(r *obs.Recorder, t0 time.Time, cold bool, devNs float64) {
	at := devNs
	if cold {
		at = lapWall(t0)
	}
	r.Instant(obs.TrackPhases, "maybe", at) // want vclock-taint "atNs"
}

// virtualOnly moves virtual-clock values around: no sources, no findings.
func virtualOnly(r *obs.Recorder, devNs float64) {
	start := devNs
	end := start + 1500
	r.Span(obs.TrackPhases, "kernel", start, end)
}

// overwritten kills the taint with a strong update before the sink.
func overwritten(r *obs.Recorder, t0 time.Time, devNs float64) {
	v := lapWall(t0)
	v = devNs
	r.Instant(obs.TrackPhases, "ok", v)
}

// wallLane keeps wall time where it belongs: WallNs says "wall" in its
// name and is exempt by design.
func wallLane(t0 time.Time, devStart, devEnd float64) obs.Span {
	return obs.Span{
		Track:   obs.TrackPhases,
		Name:    "stage",
		StartNs: devStart,
		EndNs:   devEnd,
		WallNs:  int64(lapWall(t0)),
	}
}
