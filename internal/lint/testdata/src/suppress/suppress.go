// Package suppress exercises the //gpclint:ignore directive: well-formed
// directives (known rule or "all", plus a reason) suppress findings on their
// line or the line below; malformed directives are themselves findings and
// suppress nothing.
package suppress

import (
	"errors"
	"time"
)

var errNope = errors.New("nope")

func mayFail() error { return errNope }

// suppressedSameLine: a well-formed directive on the flagged line.
func suppressedSameLine() {
	mayFail() //gpclint:ignore unchecked-error fixture demonstrates a sanctioned discard
}

// suppressedLineAbove: the directive on the line directly above also covers
// the finding.
func suppressedLineAbove() {
	//gpclint:ignore unchecked-error directive above the call also applies
	mayFail()
}

// suppressedWildcard: rule "all" silences every rule on the line.
func suppressedWildcard() {
	mayFail() //gpclint:ignore all fixture demonstrates the wildcard
}

// suppressedOtherRule: directives are rule-scoped, here silencing wallclock.
func suppressedOtherRule() int64 {
	return time.Now().UnixNano() //gpclint:ignore wallclock fixture demonstrates suppressing another rule
}

// bareDirective: no rule, no reason — the directive is a finding and the
// discard it sat next to stays flagged.
func bareDirective() {
	// want:+2 gpclint "missing rule name"
	// want:+1 unchecked-error "mayFail"
	mayFail() //gpclint:ignore
}

// unknownRule: a typo in the rule name must not silently disable anything.
func unknownRule() {
	// want:+2 gpclint "unknown rule"
	// want:+1 unchecked-error "mayFail"
	mayFail() //gpclint:ignore nosuchrule typos must not disable rules
}

// missingReason: the reason is mandatory; without one the directive is
// rejected and the finding survives.
func missingReason() {
	// want:+2 gpclint "missing reason"
	// want:+1 unchecked-error "mayFail"
	mayFail() //gpclint:ignore unchecked-error
}

// wrongRule: a well-formed directive naming a different rule leaves this
// rule's finding live — and, suppressing nothing, the directive itself is
// stale drift.
func wrongRule() int64 {
	// want:+2 wallclock "time.Now outside"
	// want:+1 config-drift "stale ignore directive"
	return time.Now().UnixNano() //gpclint:ignore unchecked-error a mismatched rule does not suppress wallclock
}
