// Package goroutine is the goroutine-discipline fixture (classified
// DeterminismCritical in FixtureConfig). The positives write shared
// captured state from concurrent function literals — a plain counter, a
// shared append, a map insert from a worker-pool closure — and select
// over two ready channels into ordered output. The negatives are the
// sanctioned shapes: per-slot slice writes, pointers to your own element,
// lock-protected sections, and selects that only dispatch.
package goroutine

import "sync"

// sharedCounter increments a captured int from a goroutine: lost updates
// on a real race, scheduler-ordered even when it happens to work.
func sharedCounter() int {
	total := 0
	done := make(chan struct{})
	go func() {
		total++ // want goroutine-discipline "total"
		close(done)
	}()
	<-done
	return total
}

// sharedAppend grows one slice from many goroutines: element order is the
// scheduler's, and append itself races on the header.
func sharedAppend(items []int) []int {
	var out []int
	var wg sync.WaitGroup
	for _, it := range items {
		it := it
		wg.Add(1)
		go func() {
			defer wg.Done()
			out = append(out, it*it) // want goroutine-discipline "out"
		}()
	}
	wg.Wait()
	return out
}

// runWorkers stands in for the parallel runners (core.parallelFor,
// sched.RunLanes): the callee name is what marks its literal concurrent.
func runWorkers(n int, f func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

// sharedMap inserts into a captured map from worker closures: concurrent
// map writes fault at runtime, and the insert order is scheduler order.
func sharedMap(keys []string) map[string]int {
	m := make(map[string]int)
	runWorkers(len(keys), func(i int) {
		m[keys[i]] = i // want goroutine-discipline "m"
	})
	return m
}

// mergeFirstCome drains whichever channel is ready first: the result
// order is a coin flip the runtime flips on purpose.
func mergeFirstCome(a, b <-chan int) []int {
	var out []int
	for i := 0; i < 2; i++ {
		select { // want goroutine-discipline "select over 2 channels"
		case v := <-a:
			out = append(out, v)
		case v := <-b:
			out = append(out, v)
		}
	}
	return out
}

// perSlot gives every goroutine its own index: the disjoint-partition
// idiom the parallel backends use, no finding.
func perSlot(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		i, it := i, it
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = it * it
		}()
	}
	wg.Wait()
	return out
}

// ownElement takes a pointer to its own slot and writes through the
// local: same discipline as perSlot, one indirection later.
func ownElement(counters []int64, w int, done chan<- struct{}) {
	go func() {
		c := &counters[w]
		*c = *c + 1
		done <- struct{}{}
	}()
}

// locked serializes the shared write under a mutex: assumed disciplined.
func locked() int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// waitEither dispatches on whichever arrives first but emits nothing
// ordered: selects that only route control flow are fine.
func waitEither(done <-chan struct{}, errc <-chan error) error {
	select {
	case <-done:
		return nil
	case err := <-errc:
		return err
	}
}
