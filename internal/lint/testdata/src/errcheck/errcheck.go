// Package errcheck is the unchecked-error fixture: statement-position calls
// that silently drop an error result are findings; explicit `_ =` discards,
// error-free calls, and the configured allowlist (fmt printers,
// strings.Builder writes) are not.
package errcheck

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

var errBoom = errors.New("boom")

func mayFail() error { return errBoom }

func flushAll() (int, error) { return 0, errBoom }

func pureCount(s string) int { return len(s) }

func positives(f *os.File) {
	mayFail()       // want unchecked-error "error result of mayFail is discarded"
	flushAll()      // want unchecked-error "error result of flushAll is discarded"
	defer f.Close() // want unchecked-error "deferred error result of os.Close"
	go mayFail()    // want unchecked-error "goroutine error result of mayFail"
}

func negatives(sb *strings.Builder) error {
	_ = mayFail() // explicit discard states the intent
	pureCount("x")
	fmt.Println("count:", pureCount("y")) // allowlisted printer
	sb.WriteString("ok")                  // allowlisted: Builder writes never fail
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}
