package lint

import (
	"go/ast"
)

// GlobalRand flags uses of the package-level math/rand (and math/rand/v2)
// functions — Intn, Float64, Shuffle, Seed, ... — outside the designated
// data-generator packages. The global source is process-wide mutable state:
// two call sites interleaving on it produce different streams from run to
// run, which breaks seed-determinism the moment any clustering code touches
// it. Constructors (New, NewSource, NewZipf, NewPCG, NewChaCha8) are always
// allowed — injecting a seeded *rand.Rand is exactly the sanctioned
// pattern.
var GlobalRand = &Analyzer{
	Name: ruleGlobalRand,
	Doc:  "global math/rand use instead of an injected seeded *rand.Rand",
	Run:  runGlobalRand,
}

var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runGlobalRand(cfg *Config, pkg *Package) []Diagnostic {
	if matchAny(pkg.Path, cfg.Generator) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pkgFuncObj(pkg, sel, "math/rand")
			if obj == nil {
				obj = pkgFuncObj(pkg, sel, "math/rand/v2")
			}
			if obj == nil || randConstructors[obj.Name()] {
				return true
			}
			diags = append(diags, diag(pkg, ruleGlobalRand, sel,
				"use of global %s.%s: inject a seeded *rand.Rand instead (process-wide state breaks seed determinism)",
				obj.Pkg().Name(), obj.Name()))
			return true
		})
	}
	return diags
}
