package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Loader parses and type-checks module packages from source. Imports inside
// the module resolve recursively through the loader itself; everything else
// (the standard library) goes through go/importer's source importer, so the
// whole pipeline works offline with no compiled export data and no
// golang.org/x/tools.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string // absolute path of the directory holding go.mod
	ModulePath string // module path declared in go.mod
	BuildTags  []string

	// IncludeTests adds each REQUESTED package's in-package _test.go
	// files to the analyzed file set (the cmd/gpclint -tests flag).
	// External test packages (package foo_test) are separate packages
	// with their own import graphs and are not loaded; transitively
	// imported dependencies always load without their tests, so a test
	// file importing a package that imports the package under test — a
	// cycle only the go tool's two-pass build can untangle — stays
	// loadable.
	IncludeTests bool

	ctx       build.Context
	std       types.ImporterFrom
	pkgs      map[string]*Package // by import path
	withTests map[string]bool     // cache entry includes _test.go files
	loading   map[string]bool     // import-cycle detection
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string, tags []string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctx := build.Default
	ctx.BuildTags = append([]string(nil), tags...)
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		BuildTags:  tags,
		ctx:        ctx,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       make(map[string]*Package),
		withTests:  make(map[string]bool),
		loading:    make(map[string]bool),
	}, nil
}

// findModule walks upward from dir to the enclosing go.mod.
func findModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// LoadDir loads the package in a single directory (absolute or relative to
// the module root).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.ModuleRoot, dir)
	}
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, l.IncludeTests)
}

// load returns the type-checked package for a module-internal import path.
// A package cached without its test files is re-checked when it is later
// requested with them (the reverse downgrade never happens: dependencies
// always load test-free, and a cached with-tests package type-checks the
// same non-test declarations its importers need).
func (l *Loader) load(path string, includeTests bool) (*Package, error) {
	if p, ok := l.pkgs[path]; ok && (!includeTests || l.withTests[path]) {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.ModuleRoot
	if path != l.ModulePath {
		dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}

	names := append([]string(nil), bp.GoFiles...)
	if includeTests {
		names = append(names, bp.TestGoFiles...)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	l.withTests[path] = includeTests
	return p, nil
}

// loaderImporter adapts the Loader to types.ImporterFrom, routing module
// paths back through the loader and everything else to the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.load(path, false)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// ExpandPatterns resolves command-line package patterns — "./...",
// "dir/...", plain directories — into package directories relative to the
// module root, in walk order. Directories named testdata, vendor, or
// starting with "." or "_" terminate the recursive walk, matching the go
// tool; naming a testdata directory explicitly still works, which is how
// the fixture packages are linted on demand.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(l.ModuleRoot, root)
		}
		if !recursive {
			if hasGoFiles(root) {
				add(root)
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", pat)
			}
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test
// .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
