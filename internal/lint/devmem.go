package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gpclust/internal/lint/cfg"
)

// DevMem flags simulated-device allocations (gpusim Device.Malloc /
// MustMalloc) whose buffer has no Free reachable on some path to a return.
// The device models a real 5 GB card: a buffer leaked on an early error
// return permanently shrinks the memory every later batch plan is sized
// against, which is precisely the kind of bug only the OOM/error paths
// ever see.
//
// v2 is a forward dataflow analysis over the function's control-flow
// graph (internal/lint/cfg): buffer states propagate along every path the
// program can take — through loops, labeled break/continue, goto, switch
// and select — and a buffer that is still live on ANY path reaching a
// return is reported there. That closes the v1 statement-walker's
// documented blind spots: a Malloc inside a `for` with a `continue`
// before the Free now carries the live buffer around the back edge and
// out of the loop.
//
// The ownership conventions are unchanged: `defer b.Free()` (directly,
// inside a deferred func literal, or via a deferred local closure)
// protects every exit reachable from the registration point; a plain
// b.Free() marks the buffer freed from that point on; storing the buffer
// into a struct, slice, map, channel, or another variable, or returning
// it, transfers ownership and ends tracking; call arguments are borrows.
// On the true edge of `if err != nil` (and the false edge of
// `if err == nil`) the buffer whose allocation most recently assigned
// that error variable is treated as never allocated — Malloc failed,
// there is nothing to free. Function literal bodies are analyzed as
// functions in their own right, so a leak inside a goroutine body or an
// immediately-invoked closure is reported too.
var DevMem = &Analyzer{
	Name: ruleDevMem,
	Doc:  "device allocation with no Free reachable on every return path",
	Run:  runDevMem,
}

// Buffer state bits. A buffer's dataflow fact is the set of states it may
// be in at a program point, one bit per state; the join of two paths is
// the union. Reporting keys off the live bit: "may still be live here".
const (
	mLive    uint8 = 1 << iota // allocated, this path has not freed it
	mFreed                     // a plain Free ran on this path
	mDefer                     // a deferred Free protects every later exit
	mEscaped                   // ownership transferred (stored/sent/shared)
)

type devState struct {
	bufs map[*types.Var]uint8
	// lastErr maps an error variable to the buffer whose Malloc most
	// recently assigned it, for the err-guard refinement.
	lastErr map[types.Object]*types.Var
}

func newDevState() *devState {
	return &devState{
		bufs:    make(map[*types.Var]uint8),
		lastErr: make(map[types.Object]*types.Var),
	}
}

type devmemWalker struct {
	pkg        *Package
	closures   map[types.Object]*ast.FuncLit // local name := func(){...}
	mallocLine map[*types.Var]int
	diags      []Diagnostic
}

func runDevMem(_ *Config, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	forEachFunc(pkg, func(fd *ast.FuncDecl, _ string) {
		w := &devmemWalker{
			pkg:        pkg,
			closures:   make(map[types.Object]*ast.FuncLit),
			mallocLine: make(map[*types.Var]int),
		}
		// Collect local cleanup closures (name := func(){...}) from the
		// whole declaration, so deferred cleanups resolve in the outer
		// body and in any nested literal alike.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if lit, ok := as.Rhs[0].(*ast.FuncLit); ok {
					if id, ok := as.Lhs[0].(*ast.Ident); ok {
						if o := w.obj(id); o != nil {
							w.closures[o] = lit
						}
					}
				}
			}
			return true
		})
		// The declaration's own body, then every function literal inside
		// it, each as an independent graph: a literal's mallocs must be
		// freed on the literal's own paths (or escape through its
		// returns), exactly like a named function's.
		w.analyzeBody(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w.analyzeBody(lit.Body)
			}
			return true
		})
		diags = append(diags, w.diags...)
	})
	return diags
}

// analyzeBody solves the buffer-state dataflow over one function body and
// reports buffers that may still be live at a return.
func (w *devmemWalker) analyzeBody(body *ast.BlockStmt) {
	g := cfg.New(body)
	flow := &devFlow{w: w}
	in := cfg.Solve[*devState](g, flow)
	cfg.Replay[*devState](g, flow, in, func(_ *cfg.Block, n ast.Node, s *devState) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			w.checkLeaks(s, ret.Pos(), ret.Results)
		}
	})
	cfg.AtExit[*devState](g, flow, in, func(_ *cfg.Block, s *devState) {
		w.checkLeaks(s, body.Rbrace, nil)
	})
}

// devFlow adapts the walker to the generic dataflow solver.
type devFlow struct {
	w *devmemWalker
}

func (f *devFlow) Entry() *devState { return newDevState() }

func (f *devFlow) Clone(s *devState) *devState {
	c := newDevState()
	for k, v := range s.bufs {
		c.bufs[k] = v
	}
	for k, v := range s.lastErr {
		c.lastErr[k] = v
	}
	return c
}

// Join unions the per-buffer state sets; lastErr associations survive only
// when both paths agree (a disagreement means the association is stale on
// one path, and refining on it would be unsound).
func (f *devFlow) Join(a, b *devState) *devState {
	j := f.Clone(a)
	for k, v := range b.bufs {
		j.bufs[k] |= v
	}
	for k, v := range j.lastErr {
		if bv, ok := b.lastErr[k]; !ok || bv != v {
			delete(j.lastErr, k)
		}
	}
	return j
}

func (f *devFlow) Equal(a, b *devState) bool {
	if len(a.bufs) != len(b.bufs) || len(a.lastErr) != len(b.lastErr) {
		return false
	}
	for k, v := range a.bufs {
		if b.bufs[k] != v {
			return false
		}
	}
	for k, v := range a.lastErr {
		if b.lastErr[k] != v {
			return false
		}
	}
	return true
}

// Refine implements the err-guard: on the edge where a Malloc's error is
// non-nil, the paired buffer was never allocated.
func (f *devFlow) Refine(cond ast.Expr, branch bool, s *devState) *devState {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return s
	}
	var errTaken bool
	switch be.Op {
	case token.NEQ: // if err != nil { <- Malloc failed on the true edge
		errTaken = branch
	case token.EQL: // if err == nil { ... } else { <- failed on the false edge
		errTaken = !branch
	default:
		return s
	}
	if !errTaken {
		return s
	}
	id, ok := be.X.(*ast.Ident)
	if !ok {
		if id, ok = be.Y.(*ast.Ident); !ok {
			return s
		}
	}
	obj := f.w.pkg.Info.Uses[id]
	if obj == nil {
		return s
	}
	if buf := s.lastErr[obj]; buf != nil {
		delete(s.bufs, buf)
	}
	return s
}

func (f *devFlow) Transfer(n ast.Node, s *devState) *devState {
	w := f.w
	switch n := n.(type) {
	case *ast.AssignStmt:
		w.transferAssign(n, s)
	case *ast.DeferStmt:
		w.transferDefer(n, s)
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			w.transferCall(call, s)
		}
	case *ast.GoStmt:
		// A goroutine capturing the buffer takes shared ownership.
		w.markContained(n.Call, s, mEscaped)
	case *ast.SendStmt:
		// Sending a buffer hands it to the receiver.
		w.markContained(n.Value, s, mEscaped)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.markEscapesOutsideCalls(v, s)
					}
				}
			}
		}
	}
	return s
}

// mallocCallee recognizes `dev.Malloc(n)` / `dev.MustMalloc(n)` and
// returns the method object, or nil.
func mallocCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	m := methodObj(pkg, call.Fun)
	if m == nil || m.Pkg() == nil {
		return nil
	}
	if m.Name() != "Malloc" && m.Name() != "MustMalloc" {
		return nil
	}
	if !strings.HasSuffix(m.Pkg().Path(), "gpusim") {
		return nil
	}
	return m
}

func (w *devmemWalker) obj(id *ast.Ident) types.Object {
	if o := w.pkg.Info.Defs[id]; o != nil {
		return o
	}
	return w.pkg.Info.Uses[id]
}

func (w *devmemWalker) transferAssign(s *ast.AssignStmt, st *devState) {
	// Malloc / MustMalloc results begin tracking.
	if len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if m := mallocCallee(w.pkg, call); m != nil {
				w.markContained(call, st, mEscaped) // args can't be bufs, but be safe
				if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					if v, ok := w.obj(id).(*types.Var); ok {
						st.bufs[v] = mLive
						w.mallocLine[v] = w.pkg.Fset.Position(call.Pos()).Line
						if m.Name() == "Malloc" && len(s.Lhs) == 2 {
							if eid, ok := s.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
								if eobj := w.obj(eid); eobj != nil {
									st.lastErr[eobj] = v
								}
							}
						}
					}
				}
				return
			}
		}
		// Local closures were collected up front; a FuncLit RHS is not
		// an escape of the buffers its body mentions (they are resolved
		// through freedInside when the closure is called or deferred).
		if _, ok := s.Rhs[0].(*ast.FuncLit); ok {
			return
		}
	}
	// Any other assignment touching an error variable clears its malloc
	// association.
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if o := w.obj(id); o != nil {
				delete(st.lastErr, o)
			}
		}
	}
	// A tracked buffer stored anywhere (another var, field, slice,
	// composite literal) escapes; call arguments are borrows.
	for _, rhs := range s.Rhs {
		w.markEscapesOutsideCalls(rhs, st)
	}
}

func (w *devmemWalker) transferDefer(s *ast.DeferStmt, st *devState) {
	// defer b.Free()
	if v := freeReceiver(w.pkg, s.Call); v != nil {
		if _, ok := st.bufs[v]; ok {
			st.bufs[v] = mDefer
		}
		return
	}
	// defer func() { ... b.Free() ... }()  /  defer cleanup()
	if body := w.deferredBody(s.Call); body != nil {
		for _, v := range freedInside(w.pkg, body) {
			if _, ok := st.bufs[v]; ok {
				st.bufs[v] = mDefer
			}
		}
	}
}

func (w *devmemWalker) transferCall(call *ast.CallExpr, st *devState) {
	// b.Free()
	if v := freeReceiver(w.pkg, call); v != nil {
		if m, ok := st.bufs[v]; ok && m&mLive != 0 {
			st.bufs[v] = (m &^ mLive) | mFreed
		}
		return
	}
	// cleanup() for a local closure that frees buffers.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if lit := w.closures[w.obj(id)]; lit != nil {
			for _, v := range freedInside(w.pkg, lit.Body) {
				if m, ok := st.bufs[v]; ok && m&mLive != 0 {
					st.bufs[v] = (m &^ mLive) | mFreed
				}
			}
		}
	}
	// Other calls borrow their arguments; no state change.
}

// deferredBody returns the function body a defer will run, when it is a
// func literal or a local closure.
func (w *devmemWalker) deferredBody(call *ast.CallExpr) *ast.BlockStmt {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if lit := w.closures[w.obj(fun)]; lit != nil {
			return lit.Body
		}
	}
	return nil
}

// freeReceiver matches `<ident>.Free()` and returns the receiver variable.
func freeReceiver(pkg *Package, call *ast.CallExpr) *types.Var {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Free" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pkg.Info.Uses[id].(*types.Var)
	return v
}

// freedInside lists every variable with a `<ident>.Free()` call in the block.
func freedInside(pkg *Package, body *ast.BlockStmt) []*types.Var {
	var out []*types.Var
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if v := freeReceiver(pkg, call); v != nil {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// markEscapesOutsideCalls marks tracked buffers referenced by the
// expression as escaped, except where they appear as plain call arguments
// (borrows).
func (w *devmemWalker) markEscapesOutsideCalls(e ast.Expr, st *devState) {
	switch e := e.(type) {
	case *ast.CallExpr:
		return // callee borrows its arguments
	case *ast.Ident:
		if v, ok := w.obj(e).(*types.Var); ok {
			if m, tracked := st.bufs[v]; tracked && m&mLive != 0 {
				st.bufs[v] = (m &^ mLive) | mEscaped
			}
		}
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.CallExpr); ok {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := w.obj(id).(*types.Var); ok {
					if m, tracked := st.bufs[v]; tracked && m&mLive != 0 {
						st.bufs[v] = (m &^ mLive) | mEscaped
					}
				}
			}
			return true
		})
	}
}

// markContained marks every tracked live buffer mentioned anywhere in the
// expression (including call args) with the given state.
func (w *devmemWalker) markContained(e ast.Expr, st *devState, bit uint8) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := w.obj(id).(*types.Var); ok {
				if m, tracked := st.bufs[v]; tracked && m&mLive != 0 {
					st.bufs[v] = (m &^ mLive) | bit
				}
			}
		}
		return true
	})
}

// checkLeaks reports every may-live buffer at a return point. Buffers
// appearing in the return values transfer ownership to the caller.
func (w *devmemWalker) checkLeaks(st *devState, pos token.Pos, results []ast.Expr) {
	returned := make(map[*types.Var]bool)
	for _, r := range results {
		ast.Inspect(r, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := w.obj(id).(*types.Var); ok {
					returned[v] = true
				}
			}
			return true
		})
	}
	for v, m := range st.bufs {
		if m&mLive != 0 && !returned[v] {
			w.diags = append(w.diags, Diagnostic{
				Rule: ruleDevMem,
				Pos:  w.pkg.Fset.Position(pos),
				Message: fmt.Sprintf("device buffer %q (allocated at line %d) is not freed on this return path",
					v.Name(), w.mallocLine[v]),
			})
		}
	}
}
