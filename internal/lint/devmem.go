package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DevMem flags simulated-device allocations (gpusim Device.Malloc /
// MustMalloc) whose buffer has no Free reachable on some return path of the
// enclosing function. The device models a real 5 GB card: a buffer leaked
// on an early error return permanently shrinks the memory every later batch
// plan is sized against, which is precisely the kind of bug only the
// OOM/error paths ever see.
//
// The analysis is a statement-order walk, not a full CFG: a `defer
// b.Free()` (directly, or inside a deferred func literal or deferred local
// closure) protects every later path; a plain b.Free() marks the buffer
// freed from that point on; storing the buffer into a struct, slice, map,
// another variable, or returning it transfers ownership and ends tracking.
// Inside an `if err != nil` guard, the buffer whose allocation most
// recently assigned that error variable is treated as never allocated —
// Malloc failed, there is nothing to free.
var DevMem = &Analyzer{
	Name: ruleDevMem,
	Doc:  "device allocation with no Free reachable on every return path",
	Run:  runDevMem,
}

type bufState int

const (
	bufLive bufState = iota
	bufFreed
	bufDeferred
	bufEscaped
)

// devmemState is the walker's per-path view: buffer states plus, per error
// variable, the buffer whose Malloc most recently assigned it.
type devmemState struct {
	bufs    map[*types.Var]bufState
	lastErr map[types.Object]*types.Var
}

func (s *devmemState) clone() *devmemState {
	c := &devmemState{
		bufs:    make(map[*types.Var]bufState, len(s.bufs)),
		lastErr: make(map[types.Object]*types.Var, len(s.lastErr)),
	}
	for k, v := range s.bufs {
		c.bufs[k] = v
	}
	for k, v := range s.lastErr {
		c.lastErr[k] = v
	}
	return c
}

type devmemWalker struct {
	pkg        *Package
	fd         *ast.FuncDecl
	closures   map[types.Object]*ast.FuncLit // local name := func(){...}
	mallocLine map[*types.Var]int
	diags      []Diagnostic
}

func runDevMem(cfg *Config, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	forEachFunc(pkg, func(fd *ast.FuncDecl, _ string) {
		w := &devmemWalker{
			pkg:        pkg,
			fd:         fd,
			closures:   make(map[types.Object]*ast.FuncLit),
			mallocLine: make(map[*types.Var]int),
		}
		st := &devmemState{
			bufs:    make(map[*types.Var]bufState),
			lastErr: make(map[types.Object]*types.Var),
		}
		w.walkStmts(fd.Body.List, st)
		if !terminates(fd.Body.List) {
			w.checkLeaks(st, fd.Body.Rbrace, nil)
		}
		diags = append(diags, w.diags...)
	})
	return diags
}

// mallocTarget recognizes `b, err := dev.Malloc(n)` / `b := dev.MustMalloc(n)`
// and returns the method object, or nil.
func mallocCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	m := methodObj(pkg, call.Fun)
	if m == nil || m.Pkg() == nil {
		return nil
	}
	if m.Name() != "Malloc" && m.Name() != "MustMalloc" {
		return nil
	}
	if !strings.HasSuffix(m.Pkg().Path(), "gpusim") {
		return nil
	}
	return m
}

func (w *devmemWalker) obj(id *ast.Ident) types.Object {
	if o := w.pkg.Info.Defs[id]; o != nil {
		return o
	}
	return w.pkg.Info.Uses[id]
}

func (w *devmemWalker) walkStmts(stmts []ast.Stmt, st *devmemState) {
	for _, s := range stmts {
		w.walkStmt(s, st)
	}
}

func (w *devmemWalker) walkStmt(s ast.Stmt, st *devmemState) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.walkAssign(s, st)
	case *ast.DeferStmt:
		w.walkDefer(s, st)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			w.walkCallStmt(call, st)
		}
	case *ast.ReturnStmt:
		w.checkLeaks(st, s.Pos(), s.Results)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		body := st.clone()
		if buf := errGuardedBuf(w.pkg, s.Cond, st); buf != nil {
			// Inside `if err != nil` right after buf's Malloc: the
			// allocation failed, so buf does not exist on this path.
			delete(body.bufs, buf)
		}
		w.walkStmts(s.Body.List, body)
		w.merge(st, body, s.Body.List)
		if s.Else != nil {
			els := st.clone()
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				w.walkStmts(e.List, els)
				w.merge(st, els, e.List)
			case *ast.IfStmt:
				w.walkStmt(e, els)
				w.merge(st, els, nil)
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkStmts(s.Body.List, st)
	case *ast.RangeStmt:
		w.walkStmts(s.Body.List, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				cs := st.clone()
				w.walkStmts(cc.Body, cs)
				w.merge(st, cs, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				cs := st.clone()
				w.walkStmts(cc.Body, cs)
				w.merge(st, cs, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				cs := st.clone()
				w.walkStmts(cc.Body, cs)
				w.merge(st, cs, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, st)
	case *ast.GoStmt:
		// A goroutine capturing the buffer takes shared ownership.
		w.markContained(s.Call, st, bufEscaped)
	}
}

// merge folds a non-terminating branch's frees back into the parent state,
// optimistically: a buffer freed (or defer-freed, or escaped) inside the
// branch is not reported on later paths. Terminating branches contribute
// nothing — their returns were checked inside.
func (w *devmemWalker) merge(parent, branch *devmemState, body []ast.Stmt) {
	if body != nil && terminates(body) {
		return
	}
	for v, bs := range branch.bufs {
		if ps, ok := parent.bufs[v]; ok && ps == bufLive && bs != bufLive {
			parent.bufs[v] = bs
		}
	}
}

func (w *devmemWalker) walkAssign(s *ast.AssignStmt, st *devmemState) {
	// Malloc / MustMalloc results begin tracking.
	if len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if m := mallocCallee(w.pkg, call); m != nil {
				w.markContained(call, st, bufEscaped) // args can't be bufs, but be safe
				if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					if v, ok := w.obj(id).(*types.Var); ok {
						st.bufs[v] = bufLive
						w.mallocLine[v] = w.pkg.Fset.Position(call.Pos()).Line
						if m.Name() == "Malloc" && len(s.Lhs) == 2 {
							if eid, ok := s.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
								if eobj := w.obj(eid); eobj != nil {
									st.lastErr[eobj] = v
								}
							}
						}
					}
				}
				return
			}
		}
		// Remember local closures for defer/call resolution.
		if lit, ok := s.Rhs[0].(*ast.FuncLit); ok {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				if o := w.obj(id); o != nil {
					w.closures[o] = lit
				}
			}
		}
	}
	// Any other assignment touching an error variable clears its
	// malloc association.
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if o := w.obj(id); o != nil {
				delete(st.lastErr, o)
			}
		}
	}
	// A tracked buffer stored anywhere (another var, field, slice,
	// composite literal) escapes; call arguments are borrows.
	for _, rhs := range s.Rhs {
		w.markEscapesOutsideCalls(rhs, st)
	}
}

func (w *devmemWalker) walkDefer(s *ast.DeferStmt, st *devmemState) {
	// defer b.Free()
	if v := freeReceiver(w.pkg, s.Call); v != nil {
		if _, ok := st.bufs[v]; ok {
			st.bufs[v] = bufDeferred
		}
		return
	}
	// defer func() { ... b.Free() ... }()  /  defer cleanup()
	if body := w.deferredBody(s.Call); body != nil {
		for _, v := range freedInside(w.pkg, body) {
			if _, ok := st.bufs[v]; ok {
				st.bufs[v] = bufDeferred
			}
		}
	}
}

func (w *devmemWalker) walkCallStmt(call *ast.CallExpr, st *devmemState) {
	// b.Free()
	if v := freeReceiver(w.pkg, call); v != nil {
		if _, ok := st.bufs[v]; ok {
			st.bufs[v] = bufFreed
		}
		return
	}
	// cleanup() for a local closure that frees buffers.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if lit := w.closures[w.obj(id)]; lit != nil {
			for _, v := range freedInside(w.pkg, lit.Body) {
				if _, ok := st.bufs[v]; ok && st.bufs[v] == bufLive {
					st.bufs[v] = bufFreed
				}
			}
		}
	}
	// Other calls borrow their arguments; no state change.
}

// deferredBody returns the function body a defer will run, when it is a
// func literal or a local closure.
func (w *devmemWalker) deferredBody(call *ast.CallExpr) *ast.BlockStmt {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if lit := w.closures[w.obj(fun)]; lit != nil {
			return lit.Body
		}
	}
	return nil
}

// freeReceiver matches `<ident>.Free()` and returns the receiver variable.
func freeReceiver(pkg *Package, call *ast.CallExpr) *types.Var {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Free" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pkg.Info.Uses[id].(*types.Var)
	return v
}

// freedInside lists every variable with a `<ident>.Free()` call in the block.
func freedInside(pkg *Package, body *ast.BlockStmt) []*types.Var {
	var out []*types.Var
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if v := freeReceiver(pkg, call); v != nil {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// markEscapesOutsideCalls marks tracked buffers referenced by the
// expression as escaped, except where they appear as plain call arguments
// (borrows).
func (w *devmemWalker) markEscapesOutsideCalls(e ast.Expr, st *devmemState) {
	switch e := e.(type) {
	case *ast.CallExpr:
		return // callee borrows its arguments
	case *ast.Ident:
		if v, ok := w.obj(e).(*types.Var); ok {
			if _, tracked := st.bufs[v]; tracked && st.bufs[v] == bufLive {
				st.bufs[v] = bufEscaped
			}
		}
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.CallExpr); ok {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := w.obj(id).(*types.Var); ok {
					if s, tracked := st.bufs[v]; tracked && s == bufLive {
						st.bufs[v] = bufEscaped
					}
				}
			}
			return true
		})
	}
}

// markContained marks every tracked buffer mentioned anywhere in the
// expression (including call args) with the given state.
func (w *devmemWalker) markContained(e ast.Expr, st *devmemState, bs bufState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := w.obj(id).(*types.Var); ok {
				if s, tracked := st.bufs[v]; tracked && s == bufLive {
					st.bufs[v] = bs
				}
			}
		}
		return true
	})
}

// checkLeaks reports every still-live buffer at a return point. Buffers
// appearing in the return values transfer ownership to the caller.
func (w *devmemWalker) checkLeaks(st *devmemState, pos token.Pos, results []ast.Expr) {
	returned := make(map[*types.Var]bool)
	for _, r := range results {
		ast.Inspect(r, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := w.obj(id).(*types.Var); ok {
					returned[v] = true
				}
			}
			return true
		})
	}
	for v, bs := range st.bufs {
		if bs == bufLive && !returned[v] {
			w.diags = append(w.diags, Diagnostic{
				Rule: ruleDevMem,
				Pos:  w.pkg.Fset.Position(pos),
				Message: fmt.Sprintf("device buffer %q (allocated at line %d) is not freed on this return path",
					v.Name(), w.mallocLine[v]),
			})
		}
	}
}

// terminates reports whether a statement list always transfers control out
// (return or panic as its last statement).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

// errGuardedBuf matches the `if err != nil` condition and returns the
// buffer whose Malloc most recently assigned err, if any.
func errGuardedBuf(pkg *Package, cond ast.Expr, st *devmemState) *types.Var {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return nil
	}
	id, ok := be.X.(*ast.Ident)
	if !ok {
		if id, ok = be.Y.(*ast.Ident); !ok {
			return nil
		}
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return nil
	}
	return st.lastErr[obj]
}
