package lint

import "strings"

// FuncAllow names one function (or "recvtype.method" for methods) in one
// package that is exempt from a rule.
type FuncAllow struct {
	PkgSuffix string // matched with pkgMatch against the import path
	Func      string // "name" for functions, "recv.name" for methods
}

// Config carries the per-rule package classifications. DefaultConfig is
// the production configuration the CI gate enforces and names only real
// packages — config-drift audits it against the loaded tree. The fixture
// self-tests and fixture CLI runs use FixtureConfig, which extends it
// with the classifications the testdata packages exercise.
type Config struct {
	// DeterminismCritical lists packages whose output feeds the clustering
	// result: ranging over a map in ordered output there is a finding.
	DeterminismCritical []string

	// Generator lists packages whose whole job is pseudo-random data
	// generation; the global-rand rule does not apply to them. (They still
	// must thread explicit *rand.Rand values to be reproducible — which
	// they do — but the rule's blanket ban is scoped to clustering code.)
	Generator []string

	// WallclockAllow lists the sanctioned wall-clock readers: timing
	// wrappers whose whole purpose is to measure real elapsed time next to
	// — never instead of — the virtual clock.
	WallclockAllow []FuncAllow

	// ErrAllow lists callees whose error result may be discarded, as
	// full-name prefixes per types.Object.String, e.g. "func fmt.Println".
	ErrAllow []string
}

// DefaultConfig returns the project configuration enforced by CI.
func DefaultConfig() *Config {
	return &Config{
		DeterminismCritical: []string{
			"internal/core",
			"internal/faults",
			"internal/gpusim",
			"internal/minwise",
			"internal/obs",
			"internal/sched",
			"internal/thrust",
			"internal/unionfind",
			"internal/pgraph",
			"internal/serve",
		},
		Generator: []string{
			"internal/seq",
			"internal/graph",
			"internal/bench",
		},
		WallclockAllow: []FuncAllow{
			{PkgSuffix: "internal/obs", Func: "nowWall"},
			{PkgSuffix: "internal/obs", Func: "sinceWall"},
			{PkgSuffix: "internal/sched", Func: "NewStopwatch"},
			{PkgSuffix: "internal/sched", Func: "Stopwatch.Lap"},
			{PkgSuffix: "internal/sched", Func: "Stopwatch.Total"},
		},
		ErrAllow: []string{
			// fmt printing to stdout/stderr: failures are unactionable and
			// ignoring them is the universal Go idiom.
			"func fmt.Print",
			"func fmt.Printf",
			"func fmt.Println",
			"func fmt.Fprint",
			"func fmt.Fprintf",
			"func fmt.Fprintln",
			// strings.Builder and bytes.Buffer writes are documented to
			// always return a nil error.
			"func (*strings.Builder).Write",
			"func (*bytes.Buffer).Write",
		},
	}
}

// FixtureConfig is DefaultConfig plus the classifications the fixture
// packages under internal/lint/testdata exercise: the rules that gate on
// DeterminismCritical or an allowlist need fixture packages on both sides
// of the gate, and the positive device fixtures must be classified so the
// config-drift import audit tests the audit, not the fixtures. cmd/gpclint
// switches to this configuration automatically when a named pattern
// resolves under lint/testdata, which is how the CI fixture-sanity loop
// runs the exact configuration the self-tests assert.
func FixtureConfig() *Config {
	c := DefaultConfig()
	c.DeterminismCritical = append(c.DeterminismCritical,
		"lint/testdata/src/maprange",
		"lint/testdata/src/devmem",
		"lint/testdata/src/devmemloop",
		"lint/testdata/src/goroutine",
	)
	c.Generator = append(c.Generator,
		"lint/testdata/src/globalrand/generator",
	)
	c.WallclockAllow = append(c.WallclockAllow,
		FuncAllow{PkgSuffix: "lint/testdata/src/wallclock", Func: "newStopwatch"},
		FuncAllow{PkgSuffix: "lint/testdata/src/wallclock", Func: "stopwatch.lap"},
		FuncAllow{PkgSuffix: "lint/testdata/src/vclocktaint", Func: "lapWall"},
	)
	return c
}

// pkgMatch reports whether the import path matches the suffix pattern: an
// exact match, or the pattern preceded by a path separator.
func pkgMatch(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix) ||
		strings.Contains(path, "/"+suffix+"/")
}

func matchAny(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgMatch(path, s) {
			return true
		}
	}
	return false
}

// wallclockAllowed reports whether the named function in the package may
// read the wall clock.
func (c *Config) wallclockAllowed(pkgPath, fn string) bool {
	for _, a := range c.WallclockAllow {
		if a.Func == fn && pkgMatch(pkgPath, a.PkgSuffix) {
			return true
		}
	}
	return false
}

// errAllowed reports whether the callee (by its types.Object.String form)
// may have its error discarded.
func (c *Config) errAllowed(objString string) bool {
	for _, p := range c.ErrAllow {
		if strings.HasPrefix(objString, p) {
			return true
		}
	}
	return false
}
