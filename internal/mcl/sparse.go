// Package mcl implements Markov Clustering (van Dongen 2000), the de-facto
// standard algorithm for protein-family detection (TribeMCL; most
// metagenomic pipelines cluster homology graphs with MCL rather than
// Shingling — the context in which the paper's approach is the rarity).
// It serves as a second comparison baseline beside the GOS k-neighbor
// linkage: random walks on the similarity graph are alternately expanded
// (matrix squaring) and inflated (entrywise powering + rescaling) until the
// flow matrix converges; the attractor structure yields the clusters.
package mcl

import (
	"fmt"
	"sort"
)

// sparse is a column-major sparse matrix with column-stochastic intent:
// cols[j] holds the non-zeros of column j, sorted by row id.
type sparse struct {
	n    int
	cols [][]entry
}

type entry struct {
	row int32
	val float64
}

// newSparse allocates an n×n zero matrix.
func newSparse(n int) *sparse {
	return &sparse{n: n, cols: make([][]entry, n)}
}

// normalizeColumns rescales every column to sum 1 (columns of all zeros are
// left empty).
func (m *sparse) normalizeColumns() {
	for j := range m.cols {
		sum := 0.0
		for _, e := range m.cols[j] {
			sum += e.val
		}
		if sum <= 0 {
			continue
		}
		for i := range m.cols[j] {
			m.cols[j][i].val /= sum
		}
	}
}

// multiply returns m × m (expansion: two-step random-walk flow). The
// accumulator is a dense scratch column reused across columns, keeping the
// cost O(Σ_j Σ_{k∈col j} nnz(col k)).
func (m *sparse) multiply() *sparse {
	out := newSparse(m.n)
	acc := make([]float64, m.n)
	var touched []int32
	for j := 0; j < m.n; j++ {
		touched = touched[:0]
		for _, kv := range m.cols[j] { // column j selects columns k with weight
			for _, iv := range m.cols[kv.row] {
				if acc[iv.row] == 0 {
					touched = append(touched, iv.row)
				}
				acc[iv.row] += kv.val * iv.val
			}
		}
		sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
		col := make([]entry, 0, len(touched))
		for _, r := range touched {
			col = append(col, entry{row: r, val: acc[r]})
			acc[r] = 0
		}
		out.cols[j] = col
	}
	return out
}

// inflate raises every entry to the given power, prunes entries below
// threshold, keeps at most maxPerCol of the largest entries per column, and
// renormalizes. Inflation is MCL's flow-sharpening operator; pruning is the
// standard sparsity control of every practical implementation.
func (m *sparse) inflate(power, threshold float64, maxPerCol int) {
	for j := range m.cols {
		col := m.cols[j]
		for i := range col {
			col[i].val = pow(col[i].val, power)
		}
		// prune small entries
		kept := col[:0]
		for _, e := range col {
			if e.val >= threshold {
				kept = append(kept, e)
			}
		}
		if maxPerCol > 0 && len(kept) > maxPerCol {
			sort.Slice(kept, func(a, b int) bool { return kept[a].val > kept[b].val })
			kept = kept[:maxPerCol]
			sort.Slice(kept, func(a, b int) bool { return kept[a].row < kept[b].row })
		}
		// a column pruned to nothing keeps its largest original entry so
		// the walk never strands
		if len(kept) == 0 && len(col) > 0 {
			best := 0
			for i := range col {
				if col[i].val > col[best].val {
					best = i
				}
			}
			kept = append(kept, col[best])
		}
		m.cols[j] = kept
	}
	m.normalizeColumns()
}

// pow is a small positive-base power (math.Pow wrapper avoiding the import
// churn in the hot loop's inliner).
func pow(base, exp float64) float64 {
	if exp == 2 {
		return base * base
	}
	return powMath(base, exp)
}

// chaos returns the maximum over columns of (max entry − sum of squares),
// van Dongen's convergence measure: 0 for an idempotent doubly-attractor
// matrix.
func (m *sparse) chaos() float64 {
	worst := 0.0
	for j := range m.cols {
		maxV, sumSq := 0.0, 0.0
		for _, e := range m.cols[j] {
			if e.val > maxV {
				maxV = e.val
			}
			sumSq += e.val * e.val
		}
		if c := maxV - sumSq; c > worst {
			worst = c
		}
	}
	return worst
}

// validate checks structural invariants (tests).
func (m *sparse) validate() error {
	for j, col := range m.cols {
		for i, e := range col {
			if e.row < 0 || int(e.row) >= m.n {
				return fmt.Errorf("mcl: column %d row %d out of range", j, e.row)
			}
			if i > 0 && col[i-1].row >= e.row {
				return fmt.Errorf("mcl: column %d rows unsorted", j)
			}
			if e.val < 0 {
				return fmt.Errorf("mcl: negative entry at (%d,%d)", e.row, j)
			}
		}
	}
	return nil
}
