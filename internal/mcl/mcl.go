package mcl

import (
	"fmt"
	"math"
	"sort"

	"gpclust/internal/graph"
	"gpclust/internal/unionfind"
)

func powMath(base, exp float64) float64 { return math.Pow(base, exp) }

// Options configures the MCL run.
type Options struct {
	// Inflation is the flow-sharpening exponent r (TribeMCL protein-family
	// practice: 1.5–4; higher splits finer). Must be > 1.
	Inflation float64
	// SelfLoops adds a unit self loop per vertex before normalization
	// (van Dongen's standard fix for bipartite-ish oscillation).
	SelfLoops bool
	// MaxIters bounds the expansion/inflation rounds.
	MaxIters int
	// ChaosEps stops iteration once the chaos measure drops below it.
	ChaosEps float64
	// PruneThreshold and MaxPerColumn control the sparsity of the flow
	// matrix (the -P/-S knobs of the mcl binary).
	PruneThreshold float64
	MaxPerColumn   int
}

// DefaultOptions returns TribeMCL-style settings.
func DefaultOptions() Options {
	return Options{
		Inflation:      2.0,
		SelfLoops:      true,
		MaxIters:       60,
		ChaosEps:       1e-4,
		PruneThreshold: 1e-5,
		MaxPerColumn:   120,
	}
}

// Cluster runs MCL on the graph and returns the clusters as sorted member
// lists, largest first. Every vertex appears in exactly one cluster.
func Cluster(g *graph.Graph, o Options) ([][]uint32, error) {
	if o.Inflation <= 1 {
		return nil, fmt.Errorf("mcl: inflation %v must be > 1", o.Inflation)
	}
	if o.MaxIters < 1 {
		return nil, fmt.Errorf("mcl: MaxIters %d must be ≥ 1", o.MaxIters)
	}
	n := g.NumVertices()
	m := newSparse(n)
	for v := 0; v < n; v++ {
		adj := g.Neighbors(uint32(v))
		col := make([]entry, 0, len(adj)+1)
		selfDone := false
		for _, u := range adj {
			if o.SelfLoops && !selfDone && int(u) > v {
				col = append(col, entry{row: int32(v), val: 1})
				selfDone = true
			}
			col = append(col, entry{row: int32(u), val: 1})
		}
		if o.SelfLoops && !selfDone {
			col = append(col, entry{row: int32(v), val: 1})
			sort.Slice(col, func(a, b int) bool { return col[a].row < col[b].row })
		}
		m.cols[v] = col
	}
	m.normalizeColumns()

	for iter := 0; iter < o.MaxIters; iter++ {
		m = m.multiply()
		m.inflate(o.Inflation, o.PruneThreshold, o.MaxPerColumn)
		if m.chaos() < o.ChaosEps {
			break
		}
	}

	return interpret(m, n), nil
}

// interpret extracts clusters from the converged flow matrix: vertices
// sharing an attractor (a row with non-negligible flow in their column) are
// joined. Union-find handles the overlapping-attractor systems van Dongen
// describes.
func interpret(m *sparse, n int) [][]uint32 {
	uf := unionfind.New(n)
	for j := 0; j < n; j++ {
		for _, e := range m.cols[j] {
			if e.val > 1e-6 {
				uf.Union(j, int(e.row))
			}
		}
	}
	sets := uf.Sets()
	clusters := make([][]uint32, 0, len(sets))
	for _, members := range sets {
		cl := make([]uint32, len(members))
		for i, v := range members {
			cl[i] = uint32(v)
		}
		sort.Slice(cl, func(a, b int) bool { return cl[a] < cl[b] })
		clusters = append(clusters, cl)
	}
	sort.Slice(clusters, func(i, j int) bool {
		a, b := clusters[i], clusters[j]
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		return a[0] < b[0]
	})
	return clusters
}
