package mcl

import (
	"math"
	"testing"

	"gpclust/internal/graph"
)

func TestSparseNormalize(t *testing.T) {
	m := newSparse(3)
	m.cols[0] = []entry{{row: 0, val: 2}, {row: 1, val: 2}}
	m.cols[1] = []entry{{row: 2, val: 5}}
	m.normalizeColumns()
	if math.Abs(m.cols[0][0].val-0.5) > 1e-12 || math.Abs(m.cols[1][0].val-1) > 1e-12 {
		t.Fatalf("normalize wrong: %+v", m.cols)
	}
	if err := m.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSparseMultiplyIdentity(t *testing.T) {
	// Permutation matrix squared: (0→1, 1→2, 2→0) squared = (0→2, 1→0, 2→1).
	m := newSparse(3)
	m.cols[0] = []entry{{row: 1, val: 1}}
	m.cols[1] = []entry{{row: 2, val: 1}}
	m.cols[2] = []entry{{row: 0, val: 1}}
	sq := m.multiply()
	if err := sq.validate(); err != nil {
		t.Fatal(err)
	}
	want := map[int]int32{0: 2, 1: 0, 2: 1}
	for j, r := range want {
		if len(sq.cols[j]) != 1 || sq.cols[j][0].row != r || math.Abs(sq.cols[j][0].val-1) > 1e-12 {
			t.Fatalf("col %d = %+v, want row %d", j, sq.cols[j], r)
		}
	}
}

func TestSparseMultiplyStochastic(t *testing.T) {
	// Column-stochastic in, column-stochastic out.
	g := graph.RandomGraph(60, 200, 3)
	m := newSparse(60)
	for v := 0; v < 60; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			m.cols[v] = append(m.cols[v], entry{row: int32(u), val: 1})
		}
	}
	m.normalizeColumns()
	sq := m.multiply()
	for j := range sq.cols {
		if len(sq.cols[j]) == 0 {
			continue
		}
		sum := 0.0
		for _, e := range sq.cols[j] {
			sum += e.val
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("column %d sums to %v after multiply", j, sum)
		}
	}
}

func TestInflateSharpens(t *testing.T) {
	m := newSparse(2)
	m.cols[0] = []entry{{row: 0, val: 0.8}, {row: 1, val: 0.2}}
	m.inflate(2, 0, 0)
	// 0.64 / (0.64+0.04) = 0.941...
	if m.cols[0][0].val < 0.9 {
		t.Fatalf("inflation did not sharpen: %+v", m.cols[0])
	}
	sum := m.cols[0][0].val + m.cols[0][1].val
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("column not renormalized: %v", sum)
	}
}

func TestInflatePrunes(t *testing.T) {
	m := newSparse(2)
	m.cols[0] = []entry{{row: 0, val: 0.99}, {row: 1, val: 0.01}}
	m.inflate(2, 1e-3, 0)
	if len(m.cols[0]) != 1 || m.cols[0][0].row != 0 {
		t.Fatalf("pruning wrong: %+v", m.cols[0])
	}
	// max-per-column cap
	m2 := newSparse(4)
	m2.cols[0] = []entry{{0, 0.4}, {1, 0.3}, {2, 0.2}, {3, 0.1}}
	m2.inflate(2, 0, 2)
	if len(m2.cols[0]) != 2 {
		t.Fatalf("cap not applied: %+v", m2.cols[0])
	}
	if m2.cols[0][0].row != 0 || m2.cols[0][1].row != 1 {
		t.Fatalf("cap kept wrong entries: %+v", m2.cols[0])
	}
}

func TestChaosConverged(t *testing.T) {
	m := newSparse(2)
	m.cols[0] = []entry{{row: 0, val: 1}}
	m.cols[1] = []entry{{row: 0, val: 1}}
	if c := m.chaos(); c > 1e-12 {
		t.Fatalf("idempotent matrix has chaos %v", c)
	}
	// A uniform column is itself a (doubly idempotent, overlapping-
	// attractor) fixed point, so only a skewed undecided column registers.
	m.cols[1] = []entry{{row: 0, val: 0.7}, {row: 1, val: 0.3}}
	if c := m.chaos(); c <= 0 {
		t.Fatalf("undecided matrix has chaos %v", c)
	}
}

func TestClusterTwoCliques(t *testing.T) {
	b := graph.NewBuilder(0)
	addClique := func(vs []uint32) {
		for i := range vs {
			for j := i + 1; j < len(vs); j++ {
				b.AddEdge(vs[i], vs[j])
			}
		}
	}
	addClique([]uint32{0, 1, 2, 3, 4})
	addClique([]uint32{5, 6, 7, 8, 9})
	b.AddEdge(4, 5) // one bridge edge
	g := b.Build()

	clusters, err := Cluster(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	labels := labelsOf(clusters, 10)
	for i := 1; i < 5; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("clique A split: %v", clusters)
		}
	}
	for i := 6; i < 10; i++ {
		if labels[i] != labels[5] {
			t.Fatalf("clique B split: %v", clusters)
		}
	}
	if labels[0] == labels[5] {
		t.Fatalf("bridged cliques merged: %v", clusters)
	}
}

func TestClusterPartitionProperty(t *testing.T) {
	g, _ := graph.Planted(graph.DefaultPlantedConfig(600))
	clusters, err := Cluster(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, g.NumVertices())
	for _, cl := range clusters {
		for j, v := range cl {
			if seen[v] {
				t.Fatalf("vertex %d twice", v)
			}
			seen[v] = true
			if j > 0 && cl[j-1] >= v {
				t.Fatal("members unsorted")
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("vertex %d missing", v)
		}
	}
}

func TestClusterRecoversPlantedFamilies(t *testing.T) {
	cfg := graph.DefaultPlantedConfig(800)
	cfg.BridgedPairs = 0
	cfg.CrossDensity = 0
	g, gt := graph.Planted(cfg)
	clusters, err := Cluster(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	labels := labelsOf(clusters, g.NumVertices())
	fams := map[int32][]uint32{}
	for v, f := range gt.Family {
		if f >= 0 {
			fams[f] = append(fams[f], uint32(v))
		}
	}
	checked := 0
	for _, members := range fams {
		if len(members) < 10 {
			continue
		}
		counts := map[int]int{}
		for _, v := range members {
			counts[labels[v]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		if float64(best) < 0.7*float64(len(members)) {
			t.Errorf("family of %d split: best cluster holds %d", len(members), best)
		}
		checked++
	}
	if checked < 3 {
		t.Fatalf("only %d checkable families", checked)
	}
}

func TestInflationGranularity(t *testing.T) {
	// Higher inflation must produce at least as many clusters (finer
	// granularity) — the classic MCL knob.
	g, _ := graph.Planted(graph.DefaultPlantedConfig(500))
	low := DefaultOptions()
	low.Inflation = 1.4
	high := DefaultOptions()
	high.Inflation = 4.0
	cl, err := Cluster(g, low)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Cluster(g, high)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) < len(cl) {
		t.Errorf("inflation 4.0 gave %d clusters, 1.4 gave %d; want finer with higher r",
			len(ch), len(cl))
	}
}

func TestClusterValidation(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	if _, err := Cluster(g, Options{Inflation: 1, MaxIters: 10}); err == nil {
		t.Fatal("inflation 1 accepted")
	}
	if _, err := Cluster(g, Options{Inflation: 2, MaxIters: 0}); err == nil {
		t.Fatal("MaxIters 0 accepted")
	}
}

func labelsOf(clusters [][]uint32, n int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	for ci, cl := range clusters {
		for _, v := range cl {
			labels[v] = ci
		}
	}
	return labels
}

func BenchmarkMCL(b *testing.B) {
	g, _ := graph.Planted(graph.DefaultPlantedConfig(2000))
	o := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(g, o); err != nil {
			b.Fatal(err)
		}
	}
}
