package minwise

// MinHash signatures and LSH banding on top of the permutation family. A
// signature matrix holds, for every input set, its minimum image under each
// permutation of the family (an s=1 sketch per permutation); banding groups
// r consecutive signature rows into one bucket key, so two sets land in the
// same bucket of some band with probability 1-(1-J^r)^b — the classic LSH
// S-curve, monotone in the Jaccard index J.
//
// Signatures are computed once per input and reused across every consumer —
// band hashing, candidate generation, and the device-resident copy the GPU
// filter keeps across its banding passes — instead of being recomputed per
// call site. The layout is column-major (all sets' minima under permutation
// j are contiguous), matching the device buffer the segmented-min kernel
// fills, so the host and device paths index signatures identically.

// EmptySig marks the signature slot of an empty set: no image exists, and
// real images are < Prime < 2^31, so the sentinel cannot collide. It equals
// the device kernels' padding sentinel (thrust.TopSSentinel) for the same
// reason.
const EmptySig = ^uint32(0)

// Signatures is the MinHash signature matrix of N sets under a C-permutation
// family, column-major: Vals[j*N+i] is set i's minimum under permutation j.
type Signatures struct {
	C, N int
	Vals []uint32
}

// SequenceSignatures computes the signature matrix of the given sets. Empty
// sets get EmptySig in every row; callers skip them when banding. The minima
// are exact (a direct scan, not the s-smallest insertion sort, so sets of
// any length work) and bit-identical to the device's segmented-min kernel
// applied to the same permutation hashes.
func (f Family) SequenceSignatures(sets [][]uint32) Signatures {
	g := Signatures{C: len(f.Pairs), N: len(sets),
		Vals: make([]uint32, len(f.Pairs)*len(sets))}
	for j, h := range f.Pairs {
		row := g.Vals[j*g.N : (j+1)*g.N]
		for i, set := range sets {
			if len(set) == 0 {
				row[i] = EmptySig
				continue
			}
			m := h.Apply(set[0])
			for _, v := range set[1:] {
				if x := h.Apply(v); x < m {
					m = x
				}
			}
			row[i] = m
		}
	}
	return g
}

// At returns set i's signature under permutation j.
func (g Signatures) At(j, i int) uint32 { return g.Vals[j*g.N+i] }

// Empty reports whether set i produced no signature (the input set was
// empty). Families of size zero have no rows to consult and report true.
func (g Signatures) Empty(i int) bool { return g.C == 0 || g.Vals[i] == EmptySig }

// BandKey collapses set i's `rows` signature values of the given band
// (permutations band·rows … band·rows+rows-1) into one 32-bit bucket key:
// FNV-1a over the values' little-endian bytes, the 32-bit analogue of
// ShingleID. Two sets share a band's bucket iff all `rows` minima agree
// (modulo the hash's negligible 2^-32 collisions), which is what gives
// banding its 1-(1-J^r)^b collision curve.
//
// The device band-hash kernel (thrust.BandHash) computes the identical
// function over the identical column-major layout, so host- and
// device-generated bucket keys agree bit for bit.
func (g Signatures) BandKey(i, band, rows int) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for r := 0; r < rows; r++ {
		v := g.Vals[(band*rows+r)*g.N+i]
		for sh := 0; sh < 32; sh += 8 {
			h ^= (v >> sh) & 0xff
			h *= prime32
		}
	}
	return h
}

// BandCollisionProb is the analytic probability that two sets of Jaccard
// index j collide in at least one of `bands` bands of `rows` rows each:
// 1 - (1 - j^rows)^bands. It is strictly increasing in j on (0,1) for any
// rows, bands ≥ 1 — the property that makes banding a similarity filter —
// and the property tests pin the empirical collision rate of real signature
// pairs to this curve.
func BandCollisionProb(j float64, rows, bands int) float64 {
	if j <= 0 {
		return 0
	}
	if j >= 1 {
		return 1
	}
	pr := 1.0
	for r := 0; r < rows; r++ {
		pr *= j
	}
	q := 1.0
	for b := 0; b < bands; b++ {
		q *= 1 - pr
	}
	return 1 - q
}
