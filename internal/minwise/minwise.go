// Package minwise implements the min-wise independent permutation machinery
// that underlies the Shingling heuristic (Broder et al., JCSS 2000; Gibson,
// Kumar & Tomkins, VLDB 2005).
//
// A permutation of a vertex's adjacency list Γ(u) is obtained by mapping
// every neighbor id v to h(v) = (A·v + B) mod P for a random pair <A,B> and
// a fixed large prime P. The s smallest images under h form one "shingle";
// repeating with c independent <A,B> pairs yields c shingles per vertex.
// Min-wise independence guarantees that two vertices sharing a large
// fraction of neighbors share each shingle with probability ≈ J(Γ(u),Γ(v)),
// the Jaccard index of their neighborhoods.
package minwise

import (
	"errors"
	"math/rand"
)

// Prime is the fixed large prime P used by the linear permutations. It must
// exceed any vertex id. 2^31 - 1 (a Mersenne prime) comfortably covers the
// paper's 11M-vertex graphs while keeping products inside uint64.
const Prime uint64 = 1<<31 - 1

// HashPair is one <A,B> pair defining the permutation h(v) = (A·v+B) mod P.
type HashPair struct {
	A, B uint64
}

// Apply maps a vertex id through the permutation.
func (h HashPair) Apply(v uint32) uint32 {
	return uint32((h.A*uint64(v) + h.B) % Prime)
}

// Family is a fixed set of c random hash pairs H = {h_1 … h_c}, shared by
// every vertex so that shingles produced in the same trial j are comparable.
type Family struct {
	Pairs []HashPair
}

// NewFamily draws c hash pairs from the given seed. A is drawn from
// [1, P-1] (A=0 would collapse the permutation) and B from [0, P-1].
func NewFamily(c int, seed int64) Family {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]HashPair, c)
	for i := range pairs {
		pairs[i] = HashPair{
			A: 1 + uint64(rng.Int63n(int64(Prime-1))),
			B: uint64(rng.Int63n(int64(Prime))),
		}
	}
	return Family{Pairs: pairs}
}

// Size returns c, the number of permutations in the family.
func (f Family) Size() int { return len(f.Pairs) }

// ErrShortList reports an adjacency list with fewer than s elements; such
// vertices generate no shingles (the paper only shingles vertices with at
// least s links).
var ErrShortList = errors.New("minwise: adjacency list shorter than shingle size s")

// MinS writes into dst the s smallest values of h applied over list,
// in increasing order, using the on-the-fly insertion-sort scan the paper
// describes (justified by small s, typically ≤ 10). It returns dst[:s].
//
// The scan is O(len(list)·s) worst case but O(len(list) + s²) expected for
// random permutations, and allocation-free.
func MinS(h HashPair, list []uint32, dst []uint32) []uint32 {
	s := len(dst)
	if len(list) < s {
		panic("minwise.MinS: list shorter than s; caller must skip short lists")
	}
	// Seed with the first s images, insertion-sorted.
	n := 0
	for _, v := range list[:s] {
		x := h.Apply(v)
		i := n
		for i > 0 && dst[i-1] > x {
			dst[i] = dst[i-1]
			i--
		}
		dst[i] = x
		n++
	}
	// Stream the rest, keeping the s smallest.
	for _, v := range list[s:] {
		x := h.Apply(v)
		if x >= dst[s-1] {
			continue
		}
		i := s - 1
		for i > 0 && dst[i-1] > x {
			dst[i] = dst[i-1]
			i--
		}
		dst[i] = x
	}
	return dst
}

// ShingleID collapses an s-element shingle (the sorted minima) into a single
// integer identity via a polynomial rolling hash, so that equal shingles from
// different vertices hash to the same id. This mirrors the paper's "assume
// that it is in an integer representation obtained using a hash function".
//
// A 64-bit FNV-1a over the element bytes keeps collisions negligible at the
// scales involved (≤ ~10^9 shingles).
func ShingleID(shingle []uint32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range shingle {
		for sh := 0; sh < 32; sh += 8 {
			h ^= uint64((v >> sh) & 0xff)
			h *= prime64
		}
	}
	return h
}

// EstimateJaccard estimates the Jaccard index of two sets by the fraction of
// the family's permutations under which their minima agree (s=1 sketches).
// It is the classical MinHash estimator and is used by tests to validate the
// min-wise property of the family.
func (f Family) EstimateJaccard(a, b []uint32) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	agree := 0
	var bufA, bufB [1]uint32
	for _, h := range f.Pairs {
		MinS(h, a, bufA[:])
		MinS(h, b, bufB[:])
		if bufA[0] == bufB[0] {
			agree++
		}
	}
	return float64(agree) / float64(len(f.Pairs))
}

// Jaccard computes the exact Jaccard index |A∩B| / |A∪B| of two sets given
// as unsorted unique-element slices. It is the brute-force quantity the
// shingling heuristic approximates (Equation 1 in the paper).
func Jaccard(a, b []uint32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	set := make(map[uint32]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	inter := 0
	for _, v := range b {
		if set[v] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
