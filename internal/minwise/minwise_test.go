package minwise

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHashPairApplyInRange(t *testing.T) {
	f := func(a, b uint32, v uint32) bool {
		h := HashPair{A: 1 + uint64(a)%(Prime-1), B: uint64(b) % Prime}
		return uint64(h.Apply(v%uint32(Prime))) < Prime
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewFamilyDeterministic(t *testing.T) {
	f1 := NewFamily(50, 7)
	f2 := NewFamily(50, 7)
	if f1.Size() != 50 {
		t.Fatalf("Size() = %d, want 50", f1.Size())
	}
	for i := range f1.Pairs {
		if f1.Pairs[i] != f2.Pairs[i] {
			t.Fatalf("pair %d differs across same-seed families", i)
		}
	}
	f3 := NewFamily(50, 8)
	same := 0
	for i := range f1.Pairs {
		if f1.Pairs[i] == f3.Pairs[i] {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical families")
	}
}

func TestFamilyAValid(t *testing.T) {
	f := NewFamily(1000, 99)
	for i, p := range f.Pairs {
		if p.A == 0 || p.A >= Prime {
			t.Fatalf("pair %d: A = %d out of [1, P-1]", i, p.A)
		}
		if p.B >= Prime {
			t.Fatalf("pair %d: B = %d out of [0, P-1]", i, p.B)
		}
	}
}

func TestMinSMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		s := 1 + rng.Intn(10)
		if s > n {
			s = n
		}
		list := make([]uint32, n)
		for i := range list {
			list[i] = rng.Uint32() % uint32(Prime)
		}
		h := HashPair{A: 1 + uint64(rng.Int63n(int64(Prime-1))), B: uint64(rng.Int63n(int64(Prime)))}

		got := MinS(h, list, make([]uint32, s))

		all := make([]uint32, n)
		for i, v := range list {
			all[i] = h.Apply(v)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for i := 0; i < s; i++ {
			if got[i] != all[i] {
				t.Fatalf("trial %d: MinS[%d] = %d, want %d (full sort)", trial, i, got[i], all[i])
			}
		}
	}
}

func TestMinSSorted(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) < 3 {
			return true
		}
		list := make([]uint32, len(raw))
		for i, v := range raw {
			list[i] = v % uint32(Prime)
		}
		h := HashPair{A: 12345, B: 678}
		out := MinS(h, list, make([]uint32, 3))
		return out[0] <= out[1] && out[1] <= out[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinSPanicsOnShortList(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MinS on short list did not panic")
		}
	}()
	MinS(HashPair{A: 1}, []uint32{1, 2}, make([]uint32, 3))
}

func TestShingleIDEquality(t *testing.T) {
	a := []uint32{5, 9, 100}
	b := []uint32{5, 9, 100}
	if ShingleID(a) != ShingleID(b) {
		t.Fatal("equal shingles produced different ids")
	}
	c := []uint32{5, 9, 101}
	if ShingleID(a) == ShingleID(c) {
		t.Fatal("distinct shingles collided (astronomically unlikely)")
	}
	// Order matters: shingles are canonical (sorted), so permuted input is a
	// different byte stream and should not collide with the canonical form.
	d := []uint32{9, 5, 100}
	if ShingleID(a) == ShingleID(d) {
		t.Fatal("permuted shingle collided with canonical form")
	}
}

func TestShingleIDDistribution(t *testing.T) {
	// IDs over many random shingles should be collision-free at this scale.
	rng := rand.New(rand.NewSource(11))
	seen := make(map[uint64]bool, 100000)
	buf := make([]uint32, 2)
	for i := 0; i < 100000; i++ {
		buf[0], buf[1] = rng.Uint32(), rng.Uint32()
		id := ShingleID(buf)
		if seen[id] {
			t.Fatalf("collision after %d shingles", i)
		}
		seen[id] = true
	}
}

// TestMinwiseProperty validates the defining statistical property: for two
// sets with Jaccard index J, the probability that their min-wise images
// coincide is ≈ J. This is the theoretical heart of the Shingling heuristic.
func TestMinwiseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fam := NewFamily(2000, 13)
	for _, overlap := range []int{0, 25, 50, 75, 100} {
		// Build two 100-element sets sharing `overlap` elements.
		shared := make([]uint32, overlap)
		for i := range shared {
			shared[i] = uint32(rng.Int31n(1 << 20))
		}
		a := append([]uint32{}, shared...)
		b := append([]uint32{}, shared...)
		for len(a) < 100 {
			a = append(a, uint32(rng.Int31n(1<<20))+1<<21)
		}
		for len(b) < 100 {
			b = append(b, uint32(rng.Int31n(1<<20))+1<<22)
		}
		exact := Jaccard(a, b)
		est := fam.EstimateJaccard(a, b)
		if math.Abs(est-exact) > 0.05 {
			t.Errorf("overlap %d: MinHash estimate %.3f vs exact Jaccard %.3f (|Δ| > 0.05)",
				overlap, est, exact)
		}
	}
}

func TestJaccardExact(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want float64
	}{
		{[]uint32{}, []uint32{}, 0},
		{[]uint32{1}, []uint32{1}, 1},
		{[]uint32{1, 2}, []uint32{3, 4}, 0},
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, 0.5},
		{[]uint32{1, 2, 3, 4}, []uint32{1, 2, 3, 4}, 1},
	}
	for i, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: Jaccard = %v, want %v", i, got, c.want)
		}
	}
}

func TestJaccardSymmetric(t *testing.T) {
	f := func(a, b []uint32) bool {
		// dedupe inputs: Jaccard is defined over sets
		dedup := func(in []uint32) []uint32 {
			m := map[uint32]bool{}
			var out []uint32
			for _, v := range in {
				if !m[v] {
					m[v] = true
					out = append(out, v)
				}
			}
			return out
		}
		da, db := dedup(a), dedup(b)
		return math.Abs(Jaccard(da, db)-Jaccard(db, da)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Two vertices in a dense subgraph share most neighbors and should therefore
// share shingles with high probability — the core claim motivating the
// algorithm (Section III-B).
func TestDenseVerticesShareShingles(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const s, c = 2, 200
	fam := NewFamily(c, 31)

	// 95% shared neighborhood.
	shared := make([]uint32, 95)
	for i := range shared {
		shared[i] = uint32(rng.Int31n(1 << 20))
	}
	gu := append(append([]uint32{}, shared...), 1<<21, 1<<21+1, 1<<21+2, 1<<21+3, 1<<21+4)
	gv := append(append([]uint32{}, shared...), 1<<22, 1<<22+1, 1<<22+2, 1<<22+3, 1<<22+4)

	match := 0
	bufU, bufV := make([]uint32, s), make([]uint32, s)
	for _, h := range fam.Pairs {
		MinS(h, gu, bufU)
		MinS(h, gv, bufV)
		if ShingleID(bufU) == ShingleID(bufV) {
			match++
		}
	}
	// P(shingle match) ≈ J^s ≈ 0.905^2 ≈ 0.82 per trial; over 200 trials a
	// large majority must match.
	if match < c/2 {
		t.Errorf("dense pair shares only %d/%d shingles; expected a majority", match, c)
	}

	// Disjoint neighborhoods should essentially never share a shingle.
	gw := make([]uint32, 100)
	for i := range gw {
		gw[i] = uint32(rng.Int31n(1<<20)) + 1<<23
	}
	match = 0
	for _, h := range fam.Pairs {
		MinS(h, gu, bufU)
		MinS(h, gw, bufV)
		if ShingleID(bufU) == ShingleID(bufV) {
			match++
		}
	}
	if match > 2 {
		t.Errorf("disjoint pair shares %d/%d shingles; expected ~0", match, c)
	}
}

func BenchmarkMinS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	list := make([]uint32, 73) // paper's 2M-graph average degree
	for i := range list {
		list[i] = rng.Uint32() % uint32(Prime)
	}
	h := HashPair{A: 48271, B: 11}
	dst := make([]uint32, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinS(h, list, dst)
	}
}
