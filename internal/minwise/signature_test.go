package minwise

import (
	"math/rand"
	"testing"
)

// TestSequenceSignaturesMatchNaiveMin pins the signature matrix to the
// definition: the minimum of Apply over each set, EmptySig for empty sets.
func TestSequenceSignaturesMatchNaiveMin(t *testing.T) {
	f := NewFamily(7, 42)
	rng := rand.New(rand.NewSource(1))
	sets := make([][]uint32, 9)
	for i := range sets {
		if i == 4 {
			continue // one empty set in the middle
		}
		set := make([]uint32, 1+rng.Intn(40))
		for k := range set {
			set[k] = uint32(rng.Intn(1 << 30))
		}
		sets[i] = set
	}
	g := f.SequenceSignatures(sets)
	if g.C != 7 || g.N != 9 {
		t.Fatalf("signature shape C=%d N=%d, want 7x9", g.C, g.N)
	}
	for j, h := range f.Pairs {
		for i, set := range sets {
			want := EmptySig
			for _, v := range set {
				if x := h.Apply(v); x < want {
					want = x
				}
			}
			if got := g.At(j, i); got != want {
				t.Fatalf("sig[%d][%d] = %d, want %d", j, i, got, want)
			}
		}
	}
	if !g.Empty(4) {
		t.Fatal("empty set not reported Empty")
	}
	if g.Empty(0) {
		t.Fatal("non-empty set reported Empty")
	}
}

// TestBandKeyDistinguishesRows: band keys must depend on every row of the
// band and on the band index, and agree for equal signature columns.
func TestBandKeyDistinguishesRows(t *testing.T) {
	g := Signatures{C: 4, N: 2, Vals: []uint32{
		10, 10, // row 0
		20, 20, // row 1
		30, 31, // row 2
		40, 40, // row 3
	}}
	if g.BandKey(0, 0, 2) != g.BandKey(1, 0, 2) {
		t.Fatal("equal band 0 columns produced different keys")
	}
	if g.BandKey(0, 1, 2) == g.BandKey(1, 1, 2) {
		t.Fatal("band 1 differs in row 2 but keys collided")
	}
	if g.BandKey(0, 0, 2) == g.BandKey(0, 1, 2) {
		t.Fatal("different bands of one column produced the same key")
	}
}

// TestBandCollisionProbMonotone sweeps the analytic S-curve over a Jaccard
// grid for a spread of (rows, bands) shapes: strictly increasing in j, with
// the 0 and 1 endpoints exact.
func TestBandCollisionProbMonotone(t *testing.T) {
	shapes := []struct{ rows, bands int }{
		{1, 1}, {1, 32}, {2, 16}, {4, 8}, {3, 64}, {8, 4},
	}
	for _, s := range shapes {
		if p := BandCollisionProb(0, s.rows, s.bands); p != 0 {
			t.Fatalf("P(0) = %g for %dx%d, want 0", p, s.bands, s.rows)
		}
		if p := BandCollisionProb(1, s.rows, s.bands); p != 1 {
			t.Fatalf("P(1) = %g for %dx%d, want 1", p, s.bands, s.rows)
		}
		prev := 0.0
		for j := 0.01; j < 1; j += 0.01 {
			p := BandCollisionProb(j, s.rows, s.bands)
			// Strictly increasing until the curve saturates at 1 within
			// float precision (many-band shapes hit 1.0 well before j=1).
			if p < prev || (p == prev && p < 1-1e-12) {
				t.Fatalf("P not increasing for %dx%d at j=%.2f: %g <= %g",
					s.bands, s.rows, j, p, prev)
			}
			if p < 0 || p > 1 {
				t.Fatalf("P out of range for %dx%d at j=%.2f: %g", s.bands, s.rows, j, p)
			}
			prev = p
		}
	}
}

// TestBandCollisionEmpiricalMonotone is the satellite property test on real
// signature pairs: synthetic set pairs of increasing Jaccard overlap must
// show a (weakly) increasing measured band-collision rate, and the measured
// rate must track the analytic curve at the pairs' exact Jaccard index.
func TestBandCollisionEmpiricalMonotone(t *testing.T) {
	const (
		rows, bands = 2, 16
		trials      = 400 // independent families per overlap level
		setLen      = 60
	)
	rng := rand.New(rand.NewSource(7))
	base := make([]uint32, setLen)
	seen := map[uint32]bool{}
	for i := range base {
		for {
			v := uint32(rng.Intn(1 << 30))
			if !seen[v] {
				seen[v] = true
				base[i] = v
				break
			}
		}
	}
	fresh := func() uint32 {
		for {
			v := uint32(rng.Intn(1 << 30))
			if !seen[v] {
				seen[v] = true
				return v
			}
		}
	}

	prevRate := -1.0
	for _, shared := range []int{6, 15, 30, 45, 57} {
		// b keeps `shared` of base's elements and replaces the rest.
		b := make([]uint32, setLen)
		copy(b, base[:shared])
		for i := shared; i < setLen; i++ {
			b[i] = fresh()
		}
		j := Jaccard(base, b)
		collide := 0
		for trial := 0; trial < trials; trial++ {
			f := NewFamily(rows*bands, int64(1000+trial))
			g := f.SequenceSignatures([][]uint32{base, b})
			for band := 0; band < bands; band++ {
				if g.BandKey(0, band, rows) == g.BandKey(1, band, rows) {
					collide++
					break
				}
			}
		}
		rate := float64(collide) / float64(trials)
		if rate < prevRate {
			t.Fatalf("empirical collision rate fell as Jaccard rose: %g after %g (shared=%d)",
				rate, prevRate, shared)
		}
		prevRate = rate
		want := BandCollisionProb(j, rows, bands)
		if diff := rate - want; diff < -0.12 || diff > 0.12 {
			t.Fatalf("collision rate %.3f far from analytic %.3f at J=%.3f (shared=%d)",
				rate, want, j, shared)
		}
	}
}
