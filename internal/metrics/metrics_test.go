package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"gpclust/internal/graph"
)

func TestPairConfusionPerfect(t *testing.T) {
	labels := []int32{0, 0, 1, 1, 2}
	c := PairConfusion(labels, labels, 5)
	// pairs: (0,1) and (2,3) are TP; no FP/FN; rest TN
	if c.TP != 2 || c.FP != 0 || c.FN != 0 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.TN != 10-2 {
		t.Fatalf("TN = %d, want 8", c.TN)
	}
	if c.PPV() != 1 || c.Sensitivity() != 1 || c.Specificity() != 1 || c.NPV() != 1 {
		t.Fatalf("perfect partition has imperfect metrics: %+v", c)
	}
}

func TestPairConfusionSplitMerge(t *testing.T) {
	bench := []int32{0, 0, 0, 0} // one group of 4: 6 pairs
	test := []int32{0, 0, 1, 1}  // split in two: 2 TP, 4 FN
	c := PairConfusion(test, bench, 4)
	if c.TP != 2 || c.FN != 4 || c.FP != 0 || c.TN != 0 {
		t.Fatalf("split confusion = %+v", c)
	}
	if se := c.Sensitivity(); math.Abs(se-2.0/6) > 1e-12 {
		t.Fatalf("SE = %v, want 1/3", se)
	}
	if c.PPV() != 1 {
		t.Fatalf("PPV = %v, want 1 (sub-partitions never false-positive)", c.PPV())
	}

	// merge: test groups everything, benchmark splits
	c2 := PairConfusion(bench, test, 4)
	if c2.TP != 2 || c2.FP != 4 || c2.FN != 0 {
		t.Fatalf("merge confusion = %+v", c2)
	}
}

func TestPairConfusionUnassigned(t *testing.T) {
	test := []int32{0, 0, -1, -1}
	bench := []int32{0, 0, 0, -1}
	c := PairConfusion(test, bench, 4)
	// test pairs: (0,1) only. bench pairs: (0,1),(0,2),(1,2).
	if c.TP != 1 || c.FP != 0 || c.FN != 2 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.TN != 6-1-0-2 {
		t.Fatalf("TN = %d", c.TN)
	}
}

// Property: the four classes always partition all C(n,2) pairs, and agree
// with a brute-force count.
func TestPairConfusionAgainstBruteForce(t *testing.T) {
	f := func(rawTest, rawBench []int8) bool {
		n := len(rawTest)
		if len(rawBench) < n {
			n = len(rawBench)
		}
		if n > 40 {
			n = 40
		}
		test := make([]int32, n)
		bench := make([]int32, n)
		for i := 0; i < n; i++ {
			test[i] = int32(rawTest[i]%5) - 1 // in [-1, 3]
			if test[i] < -1 {
				test[i] = -test[i] - 2
			}
			bench[i] = int32(rawBench[i]%5) - 1
			if bench[i] < -1 {
				bench[i] = -bench[i] - 2
			}
		}
		got := PairConfusion(test, bench, n)
		var want Confusion
		same := func(l []int32, i, j int) bool { return l[i] >= 0 && l[i] == l[j] }
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				st, sb := same(test, i, j), same(bench, i, j)
				switch {
				case st && sb:
					want.TP++
				case st && !sb:
					want.FP++
				case !st && sb:
					want.FN++
				default:
					want.TN++
				}
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestLabelsFromClusters(t *testing.T) {
	clusters := [][]uint32{{0, 1, 2}, {3, 4}, {5}}
	l := LabelsFromClusters(clusters, 7, 2)
	if l[0] != l[1] || l[1] != l[2] {
		t.Fatal("first cluster labels inconsistent")
	}
	if l[3] != l[4] || l[3] == l[0] {
		t.Fatal("second cluster labels wrong")
	}
	if l[5] != -1 {
		t.Fatal("below-min cluster not dropped")
	}
	if l[6] != -1 {
		t.Fatal("unclustered vertex not -1")
	}
}

func TestDensity(t *testing.T) {
	// triangle + pendant: members {0,1,2} form a clique
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}})
	if d := Density(g, []uint32{0, 1, 2}); d != 1 {
		t.Fatalf("clique density = %v, want 1", d)
	}
	if d := Density(g, []uint32{0, 1, 2, 3}); math.Abs(d-4.0/6) > 1e-12 {
		t.Fatalf("density = %v, want 2/3", d)
	}
	if d := Density(g, []uint32{0, 3}); d != 0 {
		t.Fatalf("non-adjacent pair density = %v, want 0", d)
	}
	if d := Density(g, []uint32{0}); d != 1 {
		t.Fatalf("singleton density = %v, want 1 (paper: 'if each vertex ... is reported as an individual cluster ... the average density ... is 1')", d)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || s != 2 {
		t.Fatalf("mean/std = %v/%v, want 5/2", m, s)
	}
	m, s = MeanStd(nil)
	if m != 0 || s != 0 {
		t.Fatal("empty MeanStd not zero")
	}
}

func TestComputeGroupStats(t *testing.T) {
	st := ComputeGroupStats([][]uint32{{0, 1, 2, 3}, {4, 5}})
	if st.Groups != 2 || st.Sequences != 6 || st.Largest != 4 || st.MeanSize != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.StdSize != 1 {
		t.Fatalf("std = %v, want 1", st.StdSize)
	}
}

func TestHistograms(t *testing.T) {
	mk := func(n int) []uint32 { return make([]uint32, n) }
	clusters := [][]uint32{
		mk(5),    // below all bins: ignored
		mk(20),   // bin 0
		mk(49),   // bin 0
		mk(99),   // bin 1
		mk(100),  // bin 2
		mk(2000), // bin 5
		mk(2001), // bin 6
	}
	h := SizeHistogram(clusters)
	want := []int{2, 1, 1, 0, 0, 1, 1}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("SizeHistogram = %v, want %v", h, want)
		}
	}
	sh := SeqHistogram(clusters)
	wantS := []int64{69, 99, 100, 0, 0, 2000, 2001}
	for i := range wantS {
		if sh[i] != wantS[i] {
			t.Fatalf("SeqHistogram = %v, want %v", sh, wantS)
		}
	}
}

func TestDensityStatsAndGroupStatsEmpty(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	mean, std := DensityStats(g, nil)
	if mean != 0 || std != 0 {
		t.Fatalf("empty DensityStats = %v±%v", mean, std)
	}
	st := ComputeGroupStats(nil)
	if st.Groups != 0 || st.Sequences != 0 || st.Largest != 0 {
		t.Fatalf("empty GroupStats = %+v", st)
	}
}

func TestConfusionZeroDivision(t *testing.T) {
	var c Confusion
	if c.PPV() != 0 || c.NPV() != 0 || c.Specificity() != 0 || c.Sensitivity() != 0 {
		t.Fatal("zero confusion should yield zero rates, not NaN")
	}
}
