// Package metrics implements the quality measures of Section IV-D: pairwise
// TP/FP/FN/TN classification of a test partition against a benchmark
// partition (Equations 2–5: PPV, NPV, specificity, sensitivity), cluster
// density (Equation 6), and the group-size statistics and histograms of
// Table IV and Figure 5.
package metrics

import (
	"math"

	"gpclust/internal/graph"
)

// Confusion counts sequence pairs by their joint classification: a pair
// grouped together in the test partition and the benchmark is a TP; grouped
// in the test but not the benchmark, an FP; and so on (Section IV-D's four
// classes).
type Confusion struct {
	TP, FP, FN, TN int64
}

// PairConfusion classifies every unordered pair of the n-element universe.
// Labels < 0 mean "not in any (size-filtered) group": such an element is
// never co-grouped with anything. The count is exact and O(n + cells) via
// the contingency table.
func PairConfusion(test, bench []int32, n int) Confusion {
	type cell struct{ t, b int32 }
	cells := make(map[cell]int64)
	testSizes := make(map[int32]int64)
	benchSizes := make(map[int32]int64)
	for i := 0; i < n; i++ {
		t, b := test[i], bench[i]
		if t >= 0 {
			testSizes[t]++
		}
		if b >= 0 {
			benchSizes[b]++
		}
		if t >= 0 && b >= 0 {
			cells[cell{t, b}]++
		}
	}
	choose2 := func(k int64) int64 { return k * (k - 1) / 2 }
	var c Confusion
	for _, k := range cells {
		c.TP += choose2(k)
	}
	var testPairs, benchPairs int64
	for _, k := range testSizes {
		testPairs += choose2(k)
	}
	for _, k := range benchSizes {
		benchPairs += choose2(k)
	}
	c.FP = testPairs - c.TP
	c.FN = benchPairs - c.TP
	total := choose2(int64(n))
	c.TN = total - c.TP - c.FP - c.FN
	return c
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// PPV is the positive predictive value TP/(TP+FP) (Equation 2).
func (c Confusion) PPV() float64 { return ratio(c.TP, c.TP+c.FP) }

// NPV is the negative predictive value TN/(FN+TN) (Equation 3).
func (c Confusion) NPV() float64 { return ratio(c.TN, c.FN+c.TN) }

// Specificity is TN/(FP+TN) (Equation 4).
func (c Confusion) Specificity() float64 { return ratio(c.TN, c.FP+c.TN) }

// Sensitivity is TP/(TP+FN) (Equation 5).
func (c Confusion) Sensitivity() float64 { return ratio(c.TP, c.TP+c.FN) }

// LabelsFromClusters converts a cluster list into per-vertex labels,
// dropping clusters below minSize (the paper evaluates only clusters of
// size ≥ 20: "only clusters of size ≥ 20 are reported"). Vertices outside
// every kept cluster get -1.
func LabelsFromClusters(clusters [][]uint32, n, minSize int) []int32 {
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	next := int32(0)
	for _, cl := range clusters {
		if len(cl) < minSize {
			continue
		}
		for _, v := range cl {
			labels[v] = next
		}
		next++
	}
	return labels
}

// Density measures a cluster's intra-connectivity: edges within the cluster
// over the total number of possible edges (Equation 6); 1 corresponds to a
// clique.
func Density(g *graph.Graph, members []uint32) float64 {
	k := len(members)
	if k < 2 {
		return 1 // a single vertex is trivially fully connected
	}
	in := make(map[uint32]bool, k)
	for _, v := range members {
		in[v] = true
	}
	edges := 0
	for _, v := range members {
		for _, u := range g.Neighbors(v) {
			if v < u && in[u] {
				edges++
			}
		}
	}
	return float64(edges) / float64(k*(k-1)/2)
}

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	n := float64(len(xs))
	mean = sum / n
	variance := sumSq/n - mean*mean
	if variance > 0 {
		std = math.Sqrt(variance)
	}
	return mean, std
}

// DensityStats computes the mean ± sd cluster density across the clusters
// (Section IV-D compares 0.75±0.28 for gpClust, 0.40±0.27 for GOS, and
// 0.09±0.12 for the benchmark).
func DensityStats(g *graph.Graph, clusters [][]uint32) (mean, std float64) {
	ds := make([]float64, len(clusters))
	for i, cl := range clusters {
		ds[i] = Density(g, cl)
	}
	return MeanStd(ds)
}

// GroupStats summarizes a partition the way Table IV does.
type GroupStats struct {
	Groups    int
	Sequences int64
	Largest   int
	MeanSize  float64
	StdSize   float64
}

// ComputeGroupStats measures clusters (pre-filtered to the evaluation's
// minimum size by the caller).
func ComputeGroupStats(clusters [][]uint32) GroupStats {
	st := GroupStats{Groups: len(clusters)}
	sizes := make([]float64, len(clusters))
	for i, cl := range clusters {
		sizes[i] = float64(len(cl))
		st.Sequences += int64(len(cl))
		if len(cl) > st.Largest {
			st.Largest = len(cl)
		}
	}
	st.MeanSize, st.StdSize = MeanStd(sizes)
	return st
}

// Fig5Bins are Figure 5's group-size bins, smallest to largest.
var Fig5Bins = []struct {
	Lo, Hi int // inclusive; Hi = MaxInt for the open top bin
	Label  string
}{
	{20, 49, "20-49"},
	{50, 99, "50-99"},
	{100, 199, "100-199"},
	{200, 499, "200-499"},
	{500, 999, "500-999"},
	{1000, 2000, "1000-2000"},
	{2001, math.MaxInt, ">2000"},
}

// SizeHistogram counts groups per Figure 5(a) bin. Clusters below the first
// bin are ignored (the paper plots clusters of size ≥ 20 only).
func SizeHistogram(clusters [][]uint32) []int {
	h := make([]int, len(Fig5Bins))
	for _, cl := range clusters {
		for b, bin := range Fig5Bins {
			if len(cl) >= bin.Lo && len(cl) <= bin.Hi {
				h[b]++
				break
			}
		}
	}
	return h
}

// SeqHistogram counts sequences per Figure 5(b) bin.
func SeqHistogram(clusters [][]uint32) []int64 {
	h := make([]int64, len(Fig5Bins))
	for _, cl := range clusters {
		for b, bin := range Fig5Bins {
			if len(cl) >= bin.Lo && len(cl) <= bin.Hi {
				h[b] += int64(len(cl))
				break
			}
		}
	}
	return h
}
