package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"gpclust/internal/minwise"
)

// TheoryRow is one point of the min-wise validation experiment.
type TheoryRow struct {
	Jaccard   float64 // exact neighborhood Jaccard index
	Predicted float64 // theory: P(shingle match) for s minima
	Measured  float64 // fraction of trials whose shingles coincided
	Trials    int
}

// RunMinwiseTheory validates the statistical foundation of Section III-B:
// "A permutation thus obtained preserves the min-wise independent property
// that guarantees, with high probability, that vertices of a densely
// connected subgraph would also share [a] significant number of shingles."
// For neighborhoods with Jaccard index J, the probability that two s-minima
// shingles coincide is ∏_{i=0..s-1} (|A∩B|−i)/(|A∪B|−i) ≈ J^s; the
// experiment measures the match rate over many hash families and compares.
func RunMinwiseTheory(s, setSize, trials int, seed int64) []TheoryRow {
	rng := rand.New(rand.NewSource(seed))
	var rows []TheoryRow
	for _, overlapFrac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		shared := int(float64(setSize) * overlapFrac)
		// Two sets of setSize elements sharing `shared` of them.
		common := make([]uint32, shared)
		for i := range common {
			common[i] = uint32(rng.Int31n(1 << 20))
		}
		a := append([]uint32{}, common...)
		b := append([]uint32{}, common...)
		for len(a) < setSize {
			a = append(a, uint32(rng.Int31n(1<<20))+1<<21)
		}
		for len(b) < setSize {
			b = append(b, uint32(rng.Int31n(1<<20))+1<<22)
		}

		inter := float64(shared)
		union := float64(2*setSize - shared)
		j := inter / union
		pred := 1.0
		for i := 0; i < s; i++ {
			pred *= (inter - float64(i)) / (union - float64(i))
		}
		if pred < 0 {
			pred = 0
		}

		fam := minwise.NewFamily(trials, seed+int64(shared))
		bufA := make([]uint32, s)
		bufB := make([]uint32, s)
		match := 0
		for _, h := range fam.Pairs {
			minwise.MinS(h, a, bufA)
			minwise.MinS(h, b, bufB)
			if minwise.ShingleID(bufA) == minwise.ShingleID(bufB) {
				match++
			}
		}
		rows = append(rows, TheoryRow{
			Jaccard:   j,
			Predicted: pred,
			Measured:  float64(match) / float64(trials),
			Trials:    trials,
		})
	}
	return rows
}

// RenderMinwiseTheory prints the validation table.
func RenderMinwiseTheory(w io.Writer, s int, rows []TheoryRow) {
	fmt.Fprintf(w, "Min-wise theory validation — P(shingle match) vs prediction, s=%d (Section III-B)\n", s)
	fmt.Fprintf(w, "%10s %12s %12s %8s\n", "Jaccard", "predicted", "measured", "|Δ|")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.3f %12.4f %12.4f %8.4f\n",
			r.Jaccard, r.Predicted, r.Measured, math.Abs(r.Predicted-r.Measured))
	}
}
