package bench

import (
	"fmt"

	"gpclust/internal/faults"
	"gpclust/internal/graph"
	"gpclust/internal/metrics"
	"gpclust/internal/sched"
	"gpclust/internal/unionfind"
)

// Shared rendering and scoring helpers for the ablation sweeps. Every sweep
// that emits AblationRows with a virtual-clock value, a cost-model drift
// annotation, or a recovery annotation goes through these, so the table
// format stays uniform across AblatePacking, AblateAutoTune, AblateFaults
// and AblateLSH.

// timedRow is one virtual-clock outcome rendered in seconds.
func timedRow(label string, virtualNs float64, comment string) AblationRow {
	return AblationRow{Label: label, Value: s(virtualNs), Unit: "s", Comment: comment}
}

// driftComment appends the cost model's prediction drift to a row comment
// when the point was priced (predictedNs > 0); unpriced points pass through.
func driftComment(comment string, predictedNs float64, plan sched.PlanReport) string {
	if predictedNs <= 0 {
		return comment
	}
	return fmt.Sprintf("%s, drift %.0f%%", comment, 100*plan.DriftFrac())
}

// recoveryComment appends the recovery counters to a row comment when any
// fault recovery fired; fault-free rows pass through.
func recoveryComment(comment string, rec faults.Recovery) string {
	if !rec.Any() {
		return comment
	}
	return fmt.Sprintf("%s (%s)", comment, rec)
}

// componentLabels labels each vertex of a CSR graph with its connected
// component — the partition SW-verified homology graphs induce before any
// clustering heuristic runs, and the basis the LSH ablation scores final
// cluster quality on.
func componentLabels(g *graph.Graph) []int32 {
	n := len(g.Offsets) - 1
	uf := unionfind.New(n)
	for u := 0; u < n; u++ {
		for _, v := range g.Adj[g.Offsets[u]:g.Offsets[u+1]] {
			uf.Union(u, int(v))
		}
	}
	return uf.Labels()
}

// pairF1 is the harmonic mean of pairwise PPV and sensitivity of the test
// partition against the benchmark partition (Section IV-D's confusion,
// folded to one score).
func pairF1(test, bench []int32, n int) float64 {
	c := metrics.PairConfusion(test, bench, n)
	ppv, se := c.PPV(), c.Sensitivity()
	if ppv+se == 0 {
		return 0
	}
	return 2 * ppv * se / (ppv + se)
}
