package bench

import (
	"fmt"

	"gpclust/internal/obs"
	"gpclust/internal/pgraph"
	"gpclust/internal/seq"
	"gpclust/internal/serve"
)

// ServePoint is the outcome of the resident-serving ablation: a corpus is
// clustered once, the remainder trickles in through incremental /cluster
// requests with interleaved assign queries, and the final resident partition
// is scored against a from-scratch pgraph.Build of the union corpus. The
// counters come from the server's own obs instruments, so the sweep doubles
// as a smoke test of the serving metrics; no wall-clock values are reported
// (request latency is a property of the host machine, not the algorithm).
type ServePoint struct {
	Sequences int   `json:"sequences"` // resident after all inserts
	Base      int   `json:"base"`      // clustered at startup
	Inserted  int   `json:"inserted"`  // incremental insert requests
	Assigns   int   `json:"assigns"`   // interleaved family queries
	Passes    int64 `json:"passes"`    // coalesced scheduler passes
	Pairs     int64 `json:"pairs"`     // candidate pairs scored
	Edges     int64 `json:"edges"`     // pairs accepted as homologous
	Merges    int64 `json:"merges"`    // family merges committed
	Families  int   `json:"families"`  // resident families at the end
	Identical bool  `json:"identical"` // partition == from-scratch re-cluster
}

// partitionsEqual reports whether two labelings induce the same partition
// (bijective class correspondence; label values are arbitrary roots).
func partitionsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int32]int32{}
	rev := map[int32]int32{}
	for i := range a {
		if m, ok := fwd[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := rev[b[i]]; ok && m != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

// AblateServe drives gpclust-serve's resident path on a deterministic
// metagenome: cluster the first half at startup, insert the rest in small
// incremental batches with an assign query per batch, then compare the
// resident partition against a from-scratch Build of the whole corpus.
// n is the ORF count (0: a 240-ORF default).
func AblateServe(n int) ([]AblationRow, ServePoint, error) {
	if n <= 0 {
		n = 240
	}
	mgCfg := seq.DefaultMetagenomeConfig(n)
	mgCfg.Seed = 7
	mg, err := seq.GenerateMetagenome(mgCfg)
	if err != nil {
		return nil, ServePoint{}, err
	}
	corpus := mg.Seqs

	pcfg := pgraph.DefaultConfig()
	pcfg.Filter = pgraph.FilterLSH
	rec := obs.New()
	s, err := serve.New(serve.Config{Pgraph: pcfg, Obs: rec})
	if err != nil {
		return nil, ServePoint{}, err
	}
	defer s.Close()

	base := len(corpus) / 2
	if _, err := s.Cluster(corpus[:base]); err != nil {
		return nil, ServePoint{}, fmt.Errorf("bench: serve bootstrap: %w", err)
	}
	const chunk = 8
	assigns := 0
	for lo := base; lo < len(corpus); lo += chunk {
		hi := lo + chunk
		if hi > len(corpus) {
			hi = len(corpus)
		}
		if _, err := s.Cluster(corpus[lo:hi]); err != nil {
			return nil, ServePoint{}, fmt.Errorf("bench: serve insert %d..%d: %w", lo, hi, err)
		}
		// Query with an already-resident member: must land in its family.
		if res, err := s.Assign(corpus[lo%base]); err != nil {
			return nil, ServePoint{}, fmt.Errorf("bench: serve assign: %w", err)
		} else if !res.Assigned {
			return nil, ServePoint{}, fmt.Errorf("bench: resident member %d not assigned to its own family", lo%base)
		}
		assigns++
	}

	// From-scratch reference over the same corpus, same configuration.
	g, _, err := pgraph.Build(corpus, pcfg)
	if err != nil {
		return nil, ServePoint{}, fmt.Errorf("bench: serve reference build: %w", err)
	}

	st := s.Stats()
	counter := func(name string) int64 { return rec.Counter(name, "").Value() }
	p := ServePoint{
		Sequences: st.Sequences,
		Base:      base,
		Inserted:  len(corpus) - base,
		Assigns:   assigns,
		Passes:    counter("serve_passes_total"),
		Pairs:     counter("serve_pairs_total"),
		Edges:     counter("serve_edges_total"),
		Merges:    counter("serve_merges_total"),
		Families:  st.Families,
		Identical: partitionsEqual(s.Partition(), componentLabels(g)),
	}

	equiv := "partition DIVERGED from from-scratch re-cluster"
	if p.Identical {
		equiv = "partition identical to from-scratch re-cluster"
	}
	rows := []AblationRow{
		{"resident corpus", float64(p.Sequences), "seqs",
			fmt.Sprintf("%d clustered at startup + %d incremental over %d requests", p.Base, p.Inserted, counter("serve_requests_total"))},
		{"scheduler passes", float64(p.Passes), "", fmt.Sprintf("%d device/host scoring passes for %d cluster + %d assign requests", p.Passes, 1+(p.Inserted+chunk-1)/chunk, p.Assigns)},
		{"candidate pairs", float64(p.Pairs), "", fmt.Sprintf("LSH candidates scored; %d accepted as edges", p.Edges)},
		{"family merges", float64(p.Merges), "", fmt.Sprintf("%d families remain", p.Families)},
		{"equivalence", b2f(p.Identical), "", equiv},
	}
	return rows, p, nil
}

func b2f(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}
