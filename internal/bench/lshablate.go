package bench

import (
	"fmt"

	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/pgraph"
	"gpclust/internal/seq"
)

// LSHPoint is one (filter, banding-shape) outcome of the LSH candidate-filter
// ablation on the default metagenome workload: the candidate count the
// Smith–Waterman verifier had to score, the edge recall and component-level
// pairwise F-score against the exact filter's graph, and the LSH plan's
// cost-model window. scripts/benchcheck enforces the LSH PR's acceptance
// criteria on these records: the conservative cascade must reproduce the
// exact graph bit-identically, the default LSH shape must hold ≥ 0.95 edge
// recall with strictly fewer candidates than the exact filter, and every
// priced point must stay inside the 25% drift gate.
type LSHPoint struct {
	Setting      string  `json:"setting"` // "exact" | "lsh 256x1" | "cascade conservative" ...
	Filter       string  `json:"filter"`  // exact | lsh | cascade
	Bands        int     `json:"bands"`   // 0: exact; -1: conservative preset
	Rows         int     `json:"rows"`
	Default      bool    `json:"default"`      // the tuned default banding shape
	Conservative bool    `json:"conservative"` // raw-shingle bucket preset
	Candidates   int64   `json:"candidates"`   // pairs admitted to SW verification
	EdgeRecall   float64 `json:"edge_recall"`  // |E ∩ E_exact| / |E_exact|
	FScore       float64 `json:"f_score"`      // component-partition pairwise F1 vs exact
	Identical    bool    `json:"identical"`    // graph bit-identical to the exact path
	VirtualNs    float64 `json:"virtual_ns"`   // end-to-end Build, virtual clock
	FilterNs     float64 `json:"filter_ns"`    // filter phase, virtual clock
	SchedNs      float64 `json:"sched_ns"`     // measured LSH-plan window (0: exact)
	PredictedNs  float64 `json:"predicted_ns"` // cost model's price (0: not priced)
}

// lshRow renders one point for the human-readable sweep.
func lshRow(p LSHPoint, plan pgraph.Stats) AblationRow {
	comment := fmt.Sprintf("%d candidates, edge recall %.3f, F %.3f", p.Candidates, p.EdgeRecall, p.FScore)
	if p.Identical {
		comment = fmt.Sprintf("%d candidates, bit-identical graph", p.Candidates)
	}
	return timedRow(p.Setting, p.VirtualNs, driftComment(comment, p.PredictedNs, plan.LSHPlan))
}

// edgeRecall counts the fraction of the reference graph's edges present in
// the test graph (both CSR, both with sorted adjacency).
func edgeRecall(test, ref *graph.Graph) float64 {
	var refEdges, hit int64
	for u := range ref.Offsets[:len(ref.Offsets)-1] {
		adj := map[uint32]bool{}
		if u < len(test.Offsets)-1 {
			for _, v := range test.Adj[test.Offsets[u]:test.Offsets[u+1]] {
				adj[v] = true
			}
		}
		for _, v := range ref.Adj[ref.Offsets[u]:ref.Offsets[u+1]] {
			if uint32(u) >= v {
				continue // count each undirected edge once
			}
			refEdges++
			if adj[v] {
				hit++
			}
		}
	}
	if refEdges == 0 {
		return 1
	}
	return float64(hit) / float64(refEdges)
}

// AblateLSH sweeps the candidate-filter backends on the default metagenome:
// the exact suffix filter (the oracle), the conservative cascade (must be
// bit-identical), the tuned default LSH shape, two deliberately low-recall
// shapes for the S-curve's other end, and the cascade at the default shape.
// Every GPU run prices its LSH plan, so the sweep doubles as the cost-model
// drift gate for the new band/bucket kernels. n is the ORF count (0: the
// 1200-ORF default).
func AblateLSH(n int) ([]AblationRow, []LSHPoint, error) {
	if n <= 0 {
		n = 1200
	}
	mgCfg := seq.DefaultMetagenomeConfig(n)
	mgCfg.Seed = 7
	mg, err := seq.GenerateMetagenome(mgCfg)
	if err != nil {
		return nil, nil, err
	}

	type setting struct {
		label       string
		filter      string
		bands, rows int
	}
	settings := []setting{
		{"exact", pgraph.FilterExact, 0, 0},
		{"cascade conservative", pgraph.FilterCascade, pgraph.ConservativeBands, 0},
		{fmt.Sprintf("lsh %dx%d (default)", pgraph.DefaultLSHBands, pgraph.DefaultLSHRows),
			pgraph.FilterLSH, 0, 0},
		{"lsh 64x1", pgraph.FilterLSH, 64, 1},
		{"lsh 16x2", pgraph.FilterLSH, 16, 2},
		{fmt.Sprintf("cascade %dx%d", pgraph.DefaultLSHBands, pgraph.DefaultLSHRows),
			pgraph.FilterCascade, 0, 0},
	}

	var (
		rows    []AblationRow
		points  []LSHPoint
		gExact  *graph.Graph
		refLbls []int32
	)
	for _, st := range settings {
		cfg := pgraph.DefaultConfig()
		cfg.Filter = st.filter
		cfg.LSHBands = st.bands
		cfg.LSHRows = st.rows
		cfg.GPU = true
		cfg.PredictCost = true
		cfg.Device = gpusim.MustNew(gpusim.K20Config())
		g, stats, err := pgraph.Build(mg.Seqs, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: lsh %s: %w", st.label, err)
		}
		if gExact == nil {
			gExact = g
			refLbls = componentLabels(g)
		}
		p := LSHPoint{
			Setting: st.label, Filter: st.filter, Bands: st.bands, Rows: st.rows,
			Default:      st.filter == pgraph.FilterLSH && st.bands == 0 && st.rows == 0,
			Conservative: st.bands == pgraph.ConservativeBands,
			Candidates:   int64(stats.Candidates),
			EdgeRecall:   edgeRecall(g, gExact),
			FScore:       pairF1(componentLabels(g), refLbls, len(refLbls)),
			Identical:    graphEqual(gExact, g),
			VirtualNs:    stats.TotalNs, FilterNs: stats.FilterNs,
			SchedNs: stats.LSHPlan.ActualNs, PredictedNs: stats.LSHPlan.PredictedNs,
		}
		points = append(points, p)
		rows = append(rows, lshRow(p, stats))
	}
	return rows, points, nil
}
