package bench

import (
	"strings"
	"testing"
)

func TestAblateAutoTune(t *testing.T) {
	rows, points, err := AblateAutoTune(0.02, tinyOptions(), 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(points) || len(points) != 9 {
		t.Fatalf("rows=%d points=%d, want 9 each", len(rows), len(points))
	}

	autoByWorkload := map[string]int{}
	outByWorkload := map[string]int64{}
	for i, p := range points {
		if p.Workload == "" || p.Setting == "" {
			t.Fatalf("point %d unnamed: %+v", i, p)
		}
		if p.VirtualNs <= 0 || p.BudgetWords <= 0 || p.Lanes <= 0 || p.Batches <= 0 {
			t.Fatalf("point %s/%s has a degenerate plan: %+v", p.Workload, p.Setting, p)
		}
		if p.PredictedNs <= 0 || p.SchedNs <= 0 {
			t.Fatalf("point %s/%s missing a cost prediction: %+v", p.Workload, p.Setting, p)
		}
		if p.Auto {
			autoByWorkload[p.Workload]++
		}
		if out, ok := outByWorkload[p.Workload]; !ok {
			outByWorkload[p.Workload] = p.Output
		} else if out != p.Output {
			t.Fatalf("point %s/%s output %d differs from the workload's first point %d",
				p.Workload, p.Setting, p.Output, out)
		}
		if !strings.Contains(rows[i].Comment, "drift") {
			t.Fatalf("row %q comment lacks the drift column: %q", rows[i].Label, rows[i].Comment)
		}
	}
	for _, w := range []string{"gpclust", "pgraph"} {
		if autoByWorkload[w] != 1 {
			t.Fatalf("workload %s has %d auto points, want exactly 1", w, autoByWorkload[w])
		}
	}
}

func TestClusteringEqual(t *testing.T) {
	a := [][]uint32{{1, 2}, {3}}
	if !clusteringEqual(a, [][]uint32{{1, 2}, {3}}) {
		t.Fatal("identical clusterings reported unequal")
	}
	if clusteringEqual(a, [][]uint32{{1, 2}}) {
		t.Fatal("shape mismatch reported equal")
	}
	if clusteringEqual(a, [][]uint32{{1, 2}, {4}}) {
		t.Fatal("member mismatch reported equal")
	}
	if clusteringEqual(a, [][]uint32{{1}, {3, 2}}) {
		t.Fatal("ragged mismatch reported equal")
	}
}
