package bench

import (
	"fmt"
	"io"

	"gpclust/internal/core"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/obs"
)

// Table1Row is one input graph's row of Table I: the serial runtime and the
// gpClust component breakdown, with the two speedups the paper reports.
type Table1Row struct {
	Name   string
	Stats  graph.Stats
	Serial *core.Result
	GPU    *core.Result

	// TotalSpeedup is serial total / gpClust total (Table I: 5.88 for the
	// 20K graph, 7.18 for the 2M graph).
	TotalSpeedup float64
	// GPUSpeedup is the speedup of the accelerated part: serial shingling
	// time / GPU kernel time (Table I: 44.86 and 373.71).
	GPUSpeedup float64

	// SpanSplit is the GPU run's component breakdown reconstructed purely
	// from the observability layer (host-cpu spans + device trace) rather
	// than the accumulators inside core — an independent cross-check of
	// Table I, asserted against GPU.Timings by the bench tests.
	SpanSplit obs.Split
	// Obs and Timeline retain the GPU run's recorder and device trace so
	// callers (cmd/experiments -trace) can export the merged timeline.
	Obs      *obs.Recorder
	Timeline obs.DeviceTimeline
}

// RunTable1Row runs both backends on one input graph.
func RunTable1Row(name string, g *graph.Graph, o core.Options) (*Table1Row, error) {
	row := &Table1Row{Name: name, Stats: graph.ComputeStats(g)}
	var err error
	row.Serial, err = core.ClusterSerial(g, o)
	if err != nil {
		return nil, fmt.Errorf("bench: serial run of %s: %w", name, err)
	}
	dev := gpusim.MustNew(gpusim.K20Config())
	dev.EnableTracing()
	rec := obs.New()
	oGPU := o
	oGPU.Obs = rec // private recorder: keeps the caller's (if any) serial-only
	row.GPU, err = core.ClusterGPU(g, dev, oGPU)
	if err != nil {
		return nil, fmt.Errorf("bench: gpu run of %s: %w", name, err)
	}
	row.Obs = rec
	row.Timeline = obs.DeviceTimeline{Name: "device0", Events: dev.Trace()}
	row.SpanSplit = obs.TableSplit(rec.Spans(), []obs.DeviceTimeline{row.Timeline})
	if row.GPU.Timings.TotalNs > 0 {
		row.TotalSpeedup = row.Serial.Timings.TotalNs / row.GPU.Timings.TotalNs
	}
	if row.GPU.Timings.GPUNs > 0 {
		row.GPUSpeedup = row.Serial.Timings.ShingleNs / row.GPU.Timings.GPUNs
	}
	return row, nil
}

// RunTable1 reproduces Table I: the 20K-shaped and 2M-shaped graphs, serial
// vs gpClust, at the given scale of the paper's sizes. The GPU side runs
// Algorithm 1 literally (per-trial segmented sort, UseFullSort) because that
// is what the paper's Thrust implementation does; the fused top-s selection
// kernel is this repository's improvement and is quantified separately in
// the ablations.
func RunTable1(scale20K, scale2M float64, o core.Options) ([]*Table1Row, error) {
	o.UseFullSort = true
	g20, _ := graph.Planted(Paper20KConfig(scale20K))
	row20, err := RunTable1Row("20K", g20, o)
	if err != nil {
		return nil, err
	}
	g2m, _ := graph.Planted(Paper2MConfig(scale2M))
	row2m, err := RunTable1Row("2M", g2m, o)
	if err != nil {
		return nil, err
	}
	return []*Table1Row{row20, row2m}, nil
}

// RenderTable1 prints rows in the layout of Table I.
func RenderTable1(w io.Writer, rows []*Table1Row) {
	fmt.Fprintf(w, "Table I — serial runtime and gpClust component breakdown (seconds, virtual clock)\n")
	fmt.Fprintf(w, "%-6s %12s %12s | %10s %10s %10s %10s %10s %10s | %12s | %8s %8s\n",
		"graph", "#vertices", "#edges",
		"CPU", "GPU", "Data_c>g", "Data_g>c", "DiskIO", "Total", "Serial", "TotSpd", "GPUSpd")
	for _, r := range rows {
		t := r.GPU.Timings
		fmt.Fprintf(w, "%-6s %12d %12d | %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f | %12.2f | %7.2fX %7.2fX\n",
			r.Name, r.Stats.NonSingletons, r.Stats.Edges,
			s(t.CPUNs), s(t.GPUNs), s(t.H2DNs), s(t.D2HNs), s(t.DiskIONs), s(t.TotalNs),
			s(r.Serial.Timings.TotalNs), r.TotalSpeedup, r.GPUSpeedup)
		sp := r.SpanSplit
		fmt.Fprintf(w, "%-6s  from spans: CPU %.2f GPU %.2f c>g %.2f g>c %.2f IO %.2f total %.2f\n",
			r.Name, s(sp.CPUNs), s(sp.GPUNs), s(sp.H2DNs), s(sp.D2HNs), s(sp.DiskIONs), s(sp.TotalNs))
	}
	fmt.Fprintf(w, "paper: 20K -> CPU 52.70 GPU 7.57 c>g 1.26 g>c 4.82 IO 0.40 total 66.75 serial 392.32 (5.88X, 44.86X)\n")
	fmt.Fprintf(w, "paper: 2M  -> CPU 2685.06 GPU 447.97 c>g 5.99 g>c 108.19 IO 28.77 total 3275.98 serial 23537.80 (7.18X, 373.71X)\n")
}

// RunTable2 reproduces Table II: the input-graph statistics of the
// 2M-sequence similarity graph.
func RunTable2(scale float64) graph.Stats {
	g, _ := graph.Planted(Paper2MConfig(scale))
	return graph.ComputeStats(g)
}

// RenderTable2 prints the Table II row next to the paper's.
func RenderTable2(w io.Writer, st graph.Stats, scale float64) {
	fmt.Fprintf(w, "Table II — input graph statistics (scale %.4g of the paper's 2M)\n", scale)
	fmt.Fprintf(w, "%12s %12s %12s %12s\n", "#vertices", "#edges", "avg degree", "largest CC")
	fmt.Fprintf(w, "%12d %12d %7.0f±%-4.0f %12d\n",
		st.NonSingletons, st.Edges, st.AvgDegree, st.StdDegree, st.LargestCC)
	fmt.Fprintf(w, "paper (full scale): 1,562,984 vertices, 56,919,738 edges, 73±153, largest CC 10,707\n")
}

// s converts simulated ns to seconds.
func s(ns float64) float64 { return ns / 1e9 }
