package bench

import (
	"fmt"

	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/pgraph"
	"gpclust/internal/seq"
)

// PGraphBackendPoint is one verification backend's outcome on the default
// metagenome workload, with the Table-I-style component split. It is the
// machine-readable record scripts/bench.sh stores in BENCH_pr3.json so
// later PRs can diff the trajectory.
type PGraphBackendPoint struct {
	Backend    string  `json:"backend"`
	VirtualNs  float64 `json:"virtual_ns"`    // end-to-end Build, virtual clock
	WallNs     int64   `json:"wall_ns"`       // end-to-end Build, this host
	FilterNs   float64 `json:"cpu_filter_ns"` // CPU filter component
	AlignNs    float64 `json:"sw_ns"`         // SW verification component
	H2DNs      float64 `json:"data_c2g_ns"`   // Data_c→g component
	D2HNs      float64 `json:"data_g2c_ns"`   // Data_g→c component
	Batches    int     `json:"batches"`       // device batches (gpu backends)
	Divergence float64 `json:"divergence"`    // SW-kernel warp-divergence overhead
	Edges      int64   `json:"edges"`         // accepted edges (identical everywhere)
}

// AblatePGraphBackend compares pGraph's Smith–Waterman verification
// strategies on one metagenome: the host worker pool, the sequential GPU
// batch scheduler, the double-buffered pipelined scheduler, the sequential
// scheduler without length binning (warp-divergence cost), and a
// whole-workload single batch (occupancy effect). All five must accept the
// bit-identical edge set; the rows report the virtual-clock split. n is the
// ORF count (0: the examples/metagenome default of 1200); batchWords is the
// forced per-batch budget for the batched backends (0: a default that
// yields several batches at the default n).
func AblatePGraphBackend(n, batchWords int) ([]AblationRow, []PGraphBackendPoint, error) {
	if n <= 0 {
		n = 1200
	}
	if batchWords <= 0 {
		batchWords = 40_000
	}
	mgCfg := seq.DefaultMetagenomeConfig(n)
	mgCfg.Seed = 7
	mg, err := seq.GenerateMetagenome(mgCfg)
	if err != nil {
		return nil, nil, err
	}

	type backend struct {
		label string
		mut   func(*pgraph.Config)
	}
	backends := []backend{
		{"host pool x4", func(c *pgraph.Config) { c.Workers = 4 }},
		{"gpu sequential", func(c *pgraph.Config) {
			c.GPU = true
			c.GPUBatchWords = batchWords
		}},
		{"gpu pipelined", func(c *pgraph.Config) {
			c.GPU = true
			c.GPUPipeline = true
			c.GPUBatchWords = batchWords
		}},
		{"gpu seq no-binning", func(c *pgraph.Config) {
			c.GPU = true
			c.GPUBatchWords = batchWords
			c.NoLengthBin = true
		}},
		{"gpu single batch", func(c *pgraph.Config) {
			c.GPU = true // budget 0: the whole workload resident at once
		}},
	}

	var (
		rows   []AblationRow
		points []PGraphBackendPoint
		golden *graph.Graph
	)
	for _, b := range backends {
		cfg := pgraph.DefaultConfig()
		b.mut(&cfg)
		if cfg.GPU {
			cfg.Device = gpusim.MustNew(gpusim.K20Config())
		}
		g, st, err := pgraph.Build(mg.Seqs, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", b.label, err)
		}
		if golden == nil {
			golden = g
		} else if !graphEqual(golden, g) {
			return nil, nil, fmt.Errorf("bench: %s: edge set diverged from host backend", b.label)
		}
		points = append(points, PGraphBackendPoint{
			Backend:   b.label,
			VirtualNs: st.TotalNs, WallNs: st.WallNs,
			FilterNs: st.FilterNs, AlignNs: st.AlignNs,
			H2DNs: st.H2DNs, D2HNs: st.D2HNs,
			Batches: st.GPUBatches, Divergence: st.Divergence,
			Edges: st.Edges,
		})
		comment := fmt.Sprintf("CPU filter %.2fs, SW %.2fs", s(st.FilterNs), s(st.AlignNs))
		if cfg.GPU {
			comment = fmt.Sprintf("%s, Data_c→g %.2fs, Data_g→c %.2fs, %d batches, divergence %.1f%%",
				comment, s(st.H2DNs), s(st.D2HNs), st.GPUBatches, 100*st.Divergence)
		} else {
			comment = fmt.Sprintf("%s (%d workers)", comment, st.Workers)
		}
		rows = append(rows, AblationRow{
			Label: b.label, Value: s(st.TotalNs), Unit: "s",
			Comment: comment,
		})
	}
	return rows, points, nil
}

// graphEqual compares two CSR graphs exactly.
func graphEqual(a, b *graph.Graph) bool {
	if len(a.Offsets) != len(b.Offsets) || len(a.Adj) != len(b.Adj) {
		return false
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			return false
		}
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			return false
		}
	}
	return true
}
