package bench

import "testing"

func TestAblateServe(t *testing.T) {
	rows, p, err := AblateServe(120)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if p.Sequences != 120 || p.Base != 60 || p.Inserted != 60 {
		t.Fatalf("corpus split wrong: %+v", p)
	}
	if p.Passes < int64(1+p.Assigns) {
		t.Fatalf("passes = %d for %d requests", p.Passes, 1+p.Inserted+p.Assigns)
	}
	if p.Pairs <= 0 || p.Edges <= 0 || p.Edges > p.Pairs {
		t.Fatalf("degenerate pair/edge counts: %+v", p)
	}
	if p.Families <= 0 || p.Families > p.Sequences {
		t.Fatalf("families = %d out of range", p.Families)
	}
	if !p.Identical {
		t.Fatal("incremental partition diverged from the from-scratch re-cluster")
	}
}

func TestPartitionsEqual(t *testing.T) {
	if !partitionsEqual([]int32{0, 0, 2, 2}, []int32{5, 5, 1, 1}) {
		t.Error("relabeled identical partition reported unequal")
	}
	if partitionsEqual([]int32{0, 0, 2}, []int32{0, 1, 2}) {
		t.Error("split class reported equal")
	}
	if partitionsEqual([]int32{0, 1}, []int32{0, 0}) {
		t.Error("merged class reported equal")
	}
	if partitionsEqual([]int32{0}, []int32{0, 0}) {
		t.Error("length mismatch reported equal")
	}
}
