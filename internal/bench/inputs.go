// Package bench is the experiment harness: it rebuilds the inputs of
// Section IV and regenerates every table and figure of the paper's
// evaluation (Tables I–IV, Figure 5, the large-scale demonstration run) plus
// the ablation studies DESIGN.md calls out. cmd/experiments is its CLI;
// the repository-root bench_test.go exposes each experiment as a testing.B
// benchmark.
package bench

import (
	"gpclust/internal/core"
	"gpclust/internal/graph"
)

// Paper20KConfig returns a planted-graph configuration shaped like the
// paper's 20K-sequence input (17,079 non-singleton vertices of 20K, 374,928
// edges, degree 44±69) scaled by scale (1.0 = paper size).
func Paper20KConfig(scale float64) graph.PlantedConfig {
	n := int(20000 * scale)
	if n < 200 {
		n = 200
	}
	maxFam := 800
	if maxFam > n/8 {
		maxFam = n / 8
	}
	return graph.PlantedConfig{
		NumVertices:      n,
		MinFamily:        5,
		MaxFamily:        maxFam,
		Alpha:            2.5,
		FamilyFraction:   0.854, // 17,079 / 20,000
		IntraDensity:     0.75,
		FamiliesPerSuper: 3,
		CrossDensity:     0.01,
		NoiseEdges:       n / 40,
		BridgedPairs:     0,
		BridgeHubs:       0,
		Seed:             20,
	}
}

// Paper2MConfig returns a configuration shaped like the 2M-sequence input
// (1,562,984 non-singleton vertices of 2M, 56,919,738 edges, degree 73±153,
// largest CC 10,707 — Table II), scaled by scale.
func Paper2MConfig(scale float64) graph.PlantedConfig {
	n := int(2_000_000 * scale)
	if n < 500 {
		n = 500
	}
	maxFam := 2000
	if maxFam > n/8 {
		maxFam = n / 8
	}
	return graph.PlantedConfig{
		NumVertices:      n,
		MinFamily:        5,
		MaxFamily:        maxFam,
		Alpha:            2.5,
		FamilyFraction:   0.781, // 1,562,984 / 2,000,000
		IntraDensity:     0.75,
		FamiliesPerSuper: 3,
		CrossDensity:     0.008,
		NoiseEdges:       n / 40,
		BridgedPairs:     0,
		BridgeHubs:       0,
		Seed:             21,
	}
}

// QualityConfig returns the input for the comparative quality study
// (Tables III–IV, Figure 5): the 2M-shaped graph *with* bridged family
// pairs, the structure on which the GOS fixed-k linkage "falsely group[s]
// potentially unrelated vertices into the same cluster" while shingling
// does not.
func QualityConfig(scale float64) graph.PlantedConfig {
	cfg := Paper2MConfig(scale)
	// The GOS benchmark's profile-expanded families are very coarse (813
	// groups averaging 2,465 sequences for 2M ORFs): many core families per
	// benchmark group, sparsely cross-linked. That coarseness is also what
	// keeps both methods' merges inside benchmark groups (PPV ≈ 100%) while
	// leaving sensitivity low (~14–18%).
	cfg.FamiliesPerSuper = 10
	cfg.CrossDensity = 0.004
	// Heterogeneous families: a large share of the small families are
	// "loose" — density 0.55, at most 32 members — which puts their
	// shared-neighbor counts below the GOS k=10 linkage threshold
	// (k/0.55² ≈ 33) while shingling still percolates them. They carry the
	// paper's sensitivity gap (gpClust SE 17.85% vs GOS 13.92%).
	cfg.LooseFraction = 0.85
	cfg.LooseDensity = 0.45
	cfg.LooseMaxSize = 44
	// A few anchor bridges hang small siblings off the largest families;
	// GOS merges them into loosely connected clusters (the fixed-k failure
	// mode), shingling mostly resists.
	cfg.BridgedPairs = 2
	cfg.BridgeHubs = 15
	cfg.BridgeMinFamily = 300
	cfg.Seed = 22
	return cfg
}

// QualityOptions returns the shingling parameters for the scaled quality
// study. The paper runs s=2 at 2M vertices; the one-shared-shingle linkage's
// false-merge expectation scales as c·J^s·(cluster size), so preserving the
// paper's discrimination regime on graphs two orders of magnitude smaller
// requires a larger s (see EXPERIMENTS.md, "scale corrections"). The paper
// itself credits its quality edge to "the high configurable s and c
// parameters used in our approach based on the size of the input graph".
func QualityOptions() core.Options {
	o := core.DefaultOptions()
	o.S1, o.C1 = 3, 100
	o.S2, o.C2 = 2, 50
	return o
}

// LargeScaleConfig returns the Pacific Ocean survey graph's shape: 11M
// vertices, 640M edges (average degree ~116), scaled.
func LargeScaleConfig(scale float64) graph.PlantedConfig {
	n := int(11_000_000 * scale)
	if n < 1000 {
		n = 1000
	}
	maxFam := 4000
	if maxFam > n/8 {
		maxFam = n / 8
	}
	return graph.PlantedConfig{
		NumVertices:      n,
		MinFamily:        5,
		MaxFamily:        maxFam,
		Alpha:            2.4,
		FamilyFraction:   0.85,
		IntraDensity:     0.75,
		FamiliesPerSuper: 3,
		CrossDensity:     0.008,
		NoiseEdges:       n / 40,
		Seed:             23,
	}
}
