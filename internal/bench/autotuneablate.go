package bench

import (
	"fmt"

	"gpclust/internal/core"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/pgraph"
	"gpclust/internal/sched"
	"gpclust/internal/seq"
)

// AutoTunePoint is one (workload, batch-plan setting) outcome of the
// auto-tune ablation: the end-to-end virtual total, the scheduler window the
// cost model prices, and — for every point that ran the model — the
// prediction next to the measurement. scripts/benchcheck enforces the PR's
// acceptance criteria on these records: per workload the auto-tuned plan's
// virtual total must not exceed any fixed setting's, every output must
// agree, and each priced point's prediction must land within 25% of the
// measured window.
type AutoTunePoint struct {
	Workload    string  `json:"workload"` // "gpclust" | "pgraph"
	Setting     string  `json:"setting"`  // "auto" or the forced plan
	Auto        bool    `json:"auto"`
	BudgetWords int     `json:"budget_words"` // chosen or forced per-batch budget
	Lanes       int     `json:"lanes"`
	Batches     int     `json:"batches"`
	VirtualNs   float64 `json:"virtual_ns"`   // end-to-end run, virtual clock
	SchedNs     float64 `json:"sched_ns"`     // measured scheduler window (plan actual)
	PredictedNs float64 `json:"predicted_ns"` // cost model's price for the same window (0: not priced)
	Output      int64   `json:"output"`       // clusters (gpclust) / edges (pgraph); identical per workload
}

// autoTuneRow renders one point for the human-readable sweep.
func autoTuneRow(p AutoTunePoint, plan sched.PlanReport) AblationRow {
	return timedRow(p.Workload+" "+p.Setting, p.VirtualNs,
		driftComment(plan.String(), p.PredictedNs, plan))
}

// AblateAutoTune compares the cost-model auto-tuner against fixed batch
// plans on both consumers of internal/sched: the shingling passes
// (gpclust) and the Smith–Waterman verification (pgraph). Every fixed
// setting runs with Options.PredictCost so the model prices the plan it
// did not choose; outputs must be bit-identical across every setting of a
// workload. scale sizes the gpclust graph (Paper20KConfig), pgraphN the
// metagenome (0: the 1200-ORF default).
func AblateAutoTune(scale float64, o core.Options, pgraphN int) ([]AblationRow, []AutoTunePoint, error) {
	var (
		rows   []AblationRow
		points []AutoTunePoint
	)

	// gpclust: the two legacy derivations (sequential and pipelined), two
	// forced multi-batch budgets, and the auto-tuner. The auto-tuner's
	// candidate sweep is a superset of both legacy derivations, so with an
	// accurate model it can never lose to them.
	g, _ := graph.Planted(Paper20KConfig(scale))
	type coreSetting struct {
		label    string
		budget   int
		pipeline bool
		auto     bool
	}
	coreSettings := []coreSetting{
		{"auto", 0, false, true},
		{"fixed derived sequential", 0, false, false},
		{"fixed derived pipelined", 0, true, false},
		{"fixed 200K words", 200_000, false, false},
		{"fixed 40K words", 40_000, false, false},
	}
	var goldenClusters [][]uint32
	for _, cs := range coreSettings {
		opt := o
		opt.BatchWords = cs.budget
		opt.PipelineBatches = cs.pipeline
		opt.AutoTune = cs.auto
		opt.PredictCost = !cs.auto // auto already predicts its chosen plan
		dev := gpusim.MustNew(gpusim.K20Config())
		r, err := core.ClusterGPU(g, dev, opt)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: gpclust %s: %w", cs.label, err)
		}
		if goldenClusters == nil {
			goldenClusters = r.Clustering.Clusters
		} else if !clusteringEqual(goldenClusters, r.Clustering.Clusters) {
			return nil, nil, fmt.Errorf("bench: gpclust %s: clustering diverged from %s",
				cs.label, coreSettings[0].label)
		}
		var plan sched.PlanReport
		plan.Add(r.Pass1.Plan)
		plan.Add(r.Pass2.Plan)
		p := AutoTunePoint{
			Workload: "gpclust", Setting: cs.label, Auto: cs.auto,
			BudgetWords: plan.BudgetWords, Lanes: plan.Lanes, Batches: plan.Batches,
			VirtualNs: r.Timings.TotalNs, SchedNs: plan.ActualNs,
			PredictedNs: plan.PredictedNs,
			Output:      int64(r.NumClusters()),
		}
		points = append(points, p)
		rows = append(rows, autoTuneRow(p, plan))
	}

	// pgraph: the single-whole-workload legacy batch, a forced multi-batch
	// budget under both schedulers, and the auto-tuner.
	if pgraphN <= 0 {
		pgraphN = 1200
	}
	mgCfg := seq.DefaultMetagenomeConfig(pgraphN)
	mgCfg.Seed = 7
	mg, err := seq.GenerateMetagenome(mgCfg)
	if err != nil {
		return nil, nil, err
	}
	type pgSetting struct {
		label    string
		budget   int
		pipeline bool
		auto     bool
	}
	pgSettings := []pgSetting{
		{"auto", 0, false, true},
		{"fixed whole-workload", 0, false, false},
		{"fixed 40K words sequential", 40_000, false, false},
		{"fixed 40K words pipelined", 40_000, true, false},
	}
	var golden *graph.Graph
	for _, ps := range pgSettings {
		cfg := pgraph.DefaultConfig()
		cfg.GPU = true
		cfg.GPUPipeline = ps.pipeline
		cfg.GPUBatchWords = ps.budget
		cfg.AutoTune = ps.auto
		cfg.PredictCost = !ps.auto
		cfg.Device = gpusim.MustNew(gpusim.K20Config())
		pg, st, err := pgraph.Build(mg.Seqs, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: pgraph %s: %w", ps.label, err)
		}
		if golden == nil {
			golden = pg
		} else if !graphEqual(golden, pg) {
			return nil, nil, fmt.Errorf("bench: pgraph %s: edge set diverged from %s",
				ps.label, pgSettings[0].label)
		}
		p := AutoTunePoint{
			Workload: "pgraph", Setting: ps.label, Auto: ps.auto,
			BudgetWords: st.Plan.BudgetWords, Lanes: st.Plan.Lanes, Batches: st.Plan.Batches,
			VirtualNs: st.TotalNs, SchedNs: st.Plan.ActualNs,
			PredictedNs: st.Plan.PredictedNs,
			Output:      st.Edges,
		}
		points = append(points, p)
		rows = append(rows, autoTuneRow(p, st.Plan))
	}
	return rows, points, nil
}

// clusteringEqual compares two cluster reports exactly (both are emitted in
// the deterministic largest-first order).
func clusteringEqual(a, b [][]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
