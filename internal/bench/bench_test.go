package bench

import (
	"bytes"
	"strings"
	"testing"

	"gpclust/internal/core"
	"gpclust/internal/gos"
	"gpclust/internal/graph"
)

// tiny scales keep the harness tests fast; the real experiments run bigger
// through cmd/experiments and the root bench_test.go.
func tinyOptions() core.Options {
	o := core.DefaultOptions()
	o.C1, o.C2 = 25, 12
	return o
}

func TestInputConfigsScale(t *testing.T) {
	c := Paper20KConfig(0.1)
	if c.NumVertices != 2000 {
		t.Fatalf("20K at 0.1 scale = %d vertices", c.NumVertices)
	}
	c = Paper2MConfig(0.001)
	if c.NumVertices != 2000 {
		t.Fatalf("2M at 0.001 scale = %d vertices", c.NumVertices)
	}
	// tiny scales clamp to a floor
	if Paper20KConfig(0).NumVertices < 200 {
		t.Fatal("floor not applied")
	}
	q := QualityConfig(0.01)
	if q.BridgedPairs < 2 || q.BridgeHubs == 0 {
		t.Fatal("quality config lacks the GOS-failure bridges")
	}
}

func TestRunTable1(t *testing.T) {
	// Scales small enough for CI but big enough that the GPU's fixed
	// per-trial overheads don't dominate (a real effect: below a few
	// thousand lists the accelerator loses to the serial code).
	rows, err := RunTable1(0.5, 0.005, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "20K" || rows[1].Name != "2M" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.TotalSpeedup <= 1 {
			t.Errorf("%s: total speedup %.2f ≤ 1", r.Name, r.TotalSpeedup)
		}
		if r.GPUSpeedup <= r.TotalSpeedup {
			t.Errorf("%s: GPU speedup %.2f not above total %.2f (Amdahl shape violated)",
				r.Name, r.GPUSpeedup, r.TotalSpeedup)
		}
	}
	// The span-derived split must reproduce the accumulator-based Timings
	// of the GPU run (the Table-I cross-check the observability layer adds).
	near := func(a, b float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		m := max(1, max(a, b))
		return d <= 1e-6*m
	}
	for _, r := range rows {
		sp, tm := r.SpanSplit, r.GPU.Timings
		if !near(sp.CPUNs, tm.CPUNs) || !near(sp.GPUNs, tm.GPUNs) ||
			!near(sp.H2DNs, tm.H2DNs) || !near(sp.D2HNs, tm.D2HNs) ||
			!near(sp.DiskIONs, tm.DiskIONs) || !near(sp.TotalNs, tm.TotalNs) {
			t.Errorf("%s: span split %+v != timings %+v", r.Name, sp, tm)
		}
		if r.Obs == nil || len(r.Timeline.Events) == 0 {
			t.Errorf("%s: row is missing its recorder or device timeline", r.Name)
		}
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Table I") || !strings.Contains(buf.String(), "20K") {
		t.Fatal("render output incomplete")
	}
	if !strings.Contains(buf.String(), "from spans:") {
		t.Fatal("render omits the span-derived split line")
	}
}

func TestRunTable2(t *testing.T) {
	st := RunTable2(0.002)
	if st.NonSingletons == 0 || st.Edges == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// degree statistics should be in the band of the paper's 73±153
	// (heavy-tailed, mean in the tens) even at small scale
	if st.AvgDegree < 20 || st.AvgDegree > 200 {
		t.Errorf("avg degree %.0f outside plausible band", st.AvgDegree)
	}
	if st.StdDegree < st.AvgDegree*0.5 {
		t.Errorf("degree std %.0f not heavy-tailed relative to mean %.0f", st.StdDegree, st.AvgDegree)
	}
	var buf bytes.Buffer
	RenderTable2(&buf, st, 0.002)
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatal("render output incomplete")
	}
}

func TestRunQualityShape(t *testing.T) {
	q, err := RunQuality(0.005, QualityOptions(), gos.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Table III shape: both methods precise; gpClust more sensitive.
	if q.GPClust.PPV() < 0.95 || q.GOS.PPV() < 0.95 {
		t.Errorf("PPV = %.3f / %.3f, want both ≥ 0.95", q.GPClust.PPV(), q.GOS.PPV())
	}
	if q.GPClust.Sensitivity() <= q.GOS.Sensitivity() {
		t.Errorf("gpClust SE %.3f not above GOS SE %.3f; paper shows the opposite",
			q.GPClust.Sensitivity(), q.GOS.Sensitivity())
	}
	// gpClust recruits more sequences into more clusters (Table IV shape).
	if q.GPClustStats.Sequences <= q.GOSStats.Sequences {
		t.Errorf("gpClust recruited %d seqs, GOS %d; want gpClust more",
			q.GPClustStats.Sequences, q.GOSStats.Sequences)
	}
	if q.GPClustStats.Groups <= q.GOSStats.Groups {
		t.Errorf("gpClust reported %d groups, GOS %d; want gpClust more",
			q.GPClustStats.Groups, q.GOSStats.Groups)
	}
	// Both methods report "core sets" far denser than the loose benchmark
	// families (the paper's density argument).
	if q.BenchDensity >= q.GPClustDensity || q.BenchDensity >= q.GOSDensity {
		t.Errorf("benchmark density %.2f not below gpClust %.2f / GOS %.2f",
			q.BenchDensity, q.GPClustDensity, q.GOSDensity)
	}
	// Histograms must cover the same groups counted in stats.
	sum := 0
	for _, c := range q.GroupHistGPClust {
		sum += c
	}
	if sum != q.GPClustStats.Groups {
		t.Errorf("Fig5a gpClust histogram sums to %d, stats say %d groups", sum, q.GPClustStats.Groups)
	}
	var buf bytes.Buffer
	RenderTable3(&buf, q)
	RenderTable4(&buf, q)
	RenderFig5(&buf, q)
	out := buf.String()
	for _, want := range []string{"Table III", "Table IV", "Figure 5(a)", "Figure 5(b)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q", want)
		}
	}
}

func TestRunLargeScale(t *testing.T) {
	r, err := RunLargeScale(0.0002, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Minutes <= 0 {
		t.Fatal("non-positive simulated minutes")
	}
	var buf bytes.Buffer
	RenderLargeScale(&buf, r)
	if !strings.Contains(buf.String(), "minutes") {
		t.Fatal("render output incomplete")
	}
}

func TestAblations(t *testing.T) {
	o := tinyOptions()

	async, err := AblateAsync(0.001, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(async) != 4 || async[3].Value <= 0 {
		t.Fatalf("async ablation shows no savings: %+v", async)
	}

	batches, err := AblateBatchSize(0.02, o, []int{0, 20000, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 {
		t.Fatalf("batch rows = %d", len(batches))
	}

	fullsort, err := AblateFullSort(0.02, o)
	if err != nil {
		t.Fatal(err)
	}
	if fullsort[2].Value <= 0 {
		t.Fatalf("full sort shows no overhead: %+v", fullsort)
	}

	params, err := AblateShingleParams(0.001, o, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 6 {
		t.Fatalf("param rows = %d", len(params))
	}

	modes, err := AblateReportModes(0.02, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 2 {
		t.Fatalf("mode rows = %d", len(modes))
	}

	gosK, err := AblateGOSK(0.001, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(gosK) != 4 {
		t.Fatalf("GOS k rows = %d", len(gosK))
	}

	var buf bytes.Buffer
	RenderAblation(&buf, "async", async)
	if !strings.Contains(buf.String(), "Ablation") {
		t.Fatal("render output incomplete")
	}
}

func TestAblateMultiGPU(t *testing.T) {
	rows, err := AblateMultiGPU(0.002, tinyOptions(), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// At sub-saturated test scales the occupancy loss can cancel the
	// per-device gain; the bottleneck kernel time must at least not blow up
	// (the saturated-regime shrinkage is covered by the occupancy model
	// tests in gpusim).
	for i := 1; i < len(rows); i++ {
		if rows[i].Value > rows[0].Value*1.25 {
			t.Errorf("%s bottleneck GPU time %.3fs far above 1-device %.3fs",
				rows[i].Label, rows[i].Value, rows[0].Value)
		}
	}
}

func TestAblateGPUAggregation(t *testing.T) {
	rows, err := AblateGPUAggregation(0.1, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
}

func TestRunMemoryScaling(t *testing.T) {
	rows, err := RunMemoryScaling([]float64{0.001, 0.002, 0.004}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.PeakHostBytes <= 0 || r.PeakDevBytes <= 0 {
			t.Fatalf("row %d: non-positive peaks %+v", i, r)
		}
		if i > 0 && r.PeakHostBytes <= rows[i-1].PeakHostBytes {
			t.Errorf("peak host bytes not growing with scale: %d then %d",
				rows[i-1].PeakHostBytes, r.PeakHostBytes)
		}
	}
	// Linearity in max{m+n, |E'|}: the per-unit ratio must stay within a
	// modest band across a 4x scale range.
	lo, hi := rows[0].Ratio, rows[0].Ratio
	for _, r := range rows {
		if r.Ratio < lo {
			lo = r.Ratio
		}
		if r.Ratio > hi {
			hi = r.Ratio
		}
	}
	if hi > 3*lo {
		t.Errorf("peak-memory ratio varies %0.1f–%0.1f across scales; complexity claim violated", lo, hi)
	}
	var buf bytes.Buffer
	RenderMemoryScaling(&buf, rows)
	if !strings.Contains(buf.String(), "Peak memory") {
		t.Fatal("render incomplete")
	}
}

func TestRunQualityScaling(t *testing.T) {
	rows, err := RunQualityScaling([]float64{0.003, 0.005}, QualityOptions(), gos.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.GPClustPPV < 0.95 || r.GOSPPV < 0.95 {
			t.Errorf("scale %v: PPV dipped: gp %.3f gos %.3f", r.Scale, r.GPClustPPV, r.GOSPPV)
		}
		if r.GPClustSE <= r.GOSSE {
			t.Errorf("scale %v: SE ordering flipped: gp %.3f vs gos %.3f", r.Scale, r.GPClustSE, r.GOSSE)
		}
	}
	var buf bytes.Buffer
	RenderQualityScaling(&buf, rows)
	if !strings.Contains(buf.String(), "stability") {
		t.Fatal("render incomplete")
	}
}

func TestCompareMCL(t *testing.T) {
	rows, err := CompareMCL(0.003, QualityOptions(), gos.DefaultOptions(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Value <= 0 {
			t.Errorf("%s: SE = %v", r.Label, r.Value)
		}
	}
}

func TestRunMinwiseTheory(t *testing.T) {
	rows := RunMinwiseTheory(2, 100, 4000, 7)
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if d := r.Measured - r.Predicted; d > 0.03 || d < -0.03 {
			t.Errorf("J=%.2f: measured %.4f vs predicted %.4f (|Δ| > 0.03)",
				r.Jaccard, r.Measured, r.Predicted)
		}
	}
	// Monotone: higher Jaccard, higher match probability.
	for i := 1; i < len(rows); i++ {
		if rows[i].Measured < rows[i-1].Measured-0.02 {
			t.Errorf("match probability not monotone in J: %v then %v",
				rows[i-1].Measured, rows[i].Measured)
		}
	}
	var buf bytes.Buffer
	RenderMinwiseTheory(&buf, 2, rows)
	if !strings.Contains(buf.String(), "theory validation") {
		t.Fatal("render incomplete")
	}
}

// The paper profiles the serial implementation and finds "roughly 80% of
// the runtime is consumed by the hashing and sorting operations in the
// first and second level shingling steps" (Section III-C) — the fact that
// motivates off-loading exactly that part. Verify our serial cost model
// reproduces the share.
func TestSerialShingleShare(t *testing.T) {
	g, _ := graph.Planted(Paper20KConfig(0.5))
	o := core.DefaultOptions()
	o.C1, o.C2 = 100, 50
	res, err := core.ClusterSerial(g, o)
	if err != nil {
		t.Fatal(err)
	}
	share := res.Timings.ShingleNs / res.Timings.TotalNs
	if share < 0.7 || share > 0.95 {
		t.Fatalf("serial shingling share = %.1f%%, want ≈ 80%% (paper Section III-C)", 100*share)
	}
}
