package bench

import (
	"fmt"
	"reflect"

	"gpclust/internal/core"
	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
)

// AblateFaults is the fault-sweep study: the same graph is clustered
// fault-free and then under a ladder of injected device-fault schedules
// (transient transfer/kernel faults, persistent OOM, a full fault storm
// forcing the host fallback, and a latency-only slow-SM spike). Every
// recovered run must produce the bit-identical clustering — the sweep
// errors out if one diverges — and the rows report what each recovery
// cost on the virtual clock.
func AblateFaults(scale float64, o core.Options) ([]AblationRow, error) {
	o.BatchWords = 200_000 // several batches, so per-batch recovery has scope
	g, _ := graph.Planted(Paper20KConfig(scale))
	devClean := gpusim.MustNew(gpusim.K20Config())
	clean, err := core.ClusterGPU(g, devClean, o)
	if err != nil {
		return nil, err
	}

	cases := []struct {
		label    string
		schedule string
		comment  string
	}{
		{"fault-free", "", "baseline"},
		{"transient transfers", "h2d op=2 count=2; d2h op=7", "retried with backoff"},
		{"transient kernel", "kernel op=3 count=2", "retried with backoff"},
		{"persistent OOM", "malloc op=1 count=12", "batch split until it fits"},
		{"fault storm", "h2d op=1 count=100", "retry budget exhausted; host fallback"},
		{"slow SM x8", "slowsm op=1 count=6 x=8", "latency spike only; no recovery needed"},
	}
	rows := make([]AblationRow, 0, len(cases))
	for _, c := range cases {
		r := clean
		if c.schedule != "" {
			sched, err := faults.Parse(c.schedule)
			if err != nil {
				return nil, fmt.Errorf("bench: schedule %q: %w", c.schedule, err)
			}
			dev := gpusim.MustNew(gpusim.K20Config())
			dev.SetFaultInjector(faults.NewInjector(sched))
			if r, err = core.ClusterGPU(g, dev, o); err != nil {
				return nil, fmt.Errorf("bench: schedule %q: %w", c.schedule, err)
			}
			if !reflect.DeepEqual(clean.Clustering, r.Clustering) {
				return nil, fmt.Errorf("bench: schedule %q: recovered clustering diverged from the fault-free run", c.schedule)
			}
		}
		comment := recoveryComment(c.comment, r.Faults)
		rows = append(rows, timedRow(c.label, r.Timings.TotalNs,
			fmt.Sprintf("%s; identical clustering, +%.3fs vs fault-free",
				comment, s(r.Timings.TotalNs-clean.Timings.TotalNs))))
	}
	return rows, nil
}
