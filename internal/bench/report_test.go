package bench

import (
	"strings"
	"testing"

	"gpclust/internal/faults"
	"gpclust/internal/graph"
	"gpclust/internal/sched"
)

func TestTimedRow(t *testing.T) {
	r := timedRow("x", 2.5e9, "c")
	if r.Label != "x" || r.Value != 2.5 || r.Unit != "s" || r.Comment != "c" {
		t.Fatalf("row = %+v", r)
	}
}

func TestDriftComment(t *testing.T) {
	plan := sched.PlanReport{PredictedNs: 110, ActualNs: 100}
	if got := driftComment("base", 0, plan); got != "base" {
		t.Fatalf("unpriced point annotated: %q", got)
	}
	got := driftComment("base", plan.PredictedNs, plan)
	if !strings.HasPrefix(got, "base, drift ") || !strings.Contains(got, "10%") {
		t.Fatalf("priced point = %q", got)
	}
}

func TestRecoveryComment(t *testing.T) {
	if got := recoveryComment("base", faults.Recovery{}); got != "base" {
		t.Fatalf("fault-free run annotated: %q", got)
	}
	rec := faults.Recovery{KernelRetries: 2}
	got := recoveryComment("base", rec)
	if !strings.HasPrefix(got, "base (") || !strings.Contains(got, rec.String()) {
		t.Fatalf("recovered run = %q", got)
	}
}

func TestComponentLabelsAndPairF1(t *testing.T) {
	// Two components {0,1,2} and {3,4}, one singleton {5}.
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	labels := componentLabels(g)
	if len(labels) != 6 {
		t.Fatalf("%d labels", len(labels))
	}
	if labels[0] != labels[1] || labels[1] != labels[2] || labels[3] != labels[4] {
		t.Fatalf("components merged wrong: %v", labels)
	}
	if labels[0] == labels[3] || labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatalf("distinct components share a label: %v", labels)
	}

	if f := pairF1(labels, labels, 6); f != 1 {
		t.Fatalf("self F1 = %v", f)
	}
	// Dropping the 1-2 edge splits the first component: sensitivity falls,
	// precision stays 1, so 0 < F1 < 1.
	split := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 3, V: 4}})
	f := pairF1(componentLabels(split), labels, 6)
	if f <= 0 || f >= 1 {
		t.Fatalf("split F1 = %v", f)
	}
	if f2 := pairF1(nil, nil, 0); f2 != 0 {
		t.Fatalf("empty F1 = %v", f2)
	}
}

func TestAblateLSHShape(t *testing.T) {
	rows, points, err := AblateLSH(160)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || len(points) != 6 {
		t.Fatalf("%d rows, %d points", len(rows), len(points))
	}
	if points[0].Filter != "exact" || !points[0].Identical || points[0].EdgeRecall != 1 {
		t.Fatalf("exact baseline = %+v", points[0])
	}
	if points[0].SchedNs != 0 || points[0].PredictedNs != 0 {
		t.Fatalf("exact point carries an LSH plan: %+v", points[0])
	}
	var sawDefault, sawConservative bool
	for _, p := range points[1:] {
		if p.Conservative {
			sawConservative = true
			if !p.Identical || p.EdgeRecall != 1 || p.FScore != 1 {
				t.Fatalf("conservative cascade not bit-identical: %+v", p)
			}
		}
		if p.Default {
			sawDefault = true
		}
		if p.EdgeRecall < 0 || p.EdgeRecall > 1 || p.FScore < 0 || p.FScore > 1 {
			t.Fatalf("scores out of range: %+v", p)
		}
		if p.Candidates <= 0 || p.SchedNs <= 0 || p.PredictedNs <= 0 {
			t.Fatalf("LSH point not measured/priced: %+v", p)
		}
	}
	if !sawDefault || !sawConservative {
		t.Fatalf("sweep missing default or conservative point: %+v", points)
	}
}
