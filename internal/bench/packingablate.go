package bench

import (
	"fmt"

	"gpclust/internal/core"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/pgraph"
	"gpclust/internal/sched"
	"gpclust/internal/seq"
)

// PackingPoint is one (workload, residue-layout) outcome of the packed-image
// ablation: the end-to-end virtual total, the Data_c→g cost split into fixed
// setup and byte-proportional volume, the bytes actually shipped, and the
// cost model's price next to the measured scheduler window.
// scripts/benchcheck enforces the packing PR's acceptance criteria on these
// records: per workload every layout must produce the identical output,
// packed+fused must post a lower virtual total than unpacked+unfused, the
// gpclust packed image must cut the H2D byte volume by at least 30%, and
// every priced point must stay inside the drift gate.
type PackingPoint struct {
	Workload    string  `json:"workload"` // "gpclust" | "pgraph"
	Setting     string  `json:"setting"`  // "unpacked" .. "packed+fused"
	Packed      bool    `json:"packed"`
	Fused       bool    `json:"fused"`
	VirtualNs   float64 `json:"virtual_ns"`     // end-to-end run, virtual clock
	H2DNs       float64 `json:"data_c2g_ns"`    // Data_c→g total (setup + volume)
	H2DSetupNs  float64 `json:"h2d_setup_ns"`   // fixed per-copy setup share
	H2DVolumeNs float64 `json:"h2d_volume_ns"`  // byte-proportional share
	H2DBytes    int64   `json:"data_c2g_bytes"` // bytes shipped host→device
	SchedNs     float64 `json:"sched_ns"`       // measured scheduler window
	PredictedNs float64 `json:"predicted_ns"`   // cost model's price (0: not priced)
	Output      int64   `json:"output"`         // clusters / edges; identical per workload
}

// packingSettings is the {packed,unpacked}×{fused,unfused} sweep. For
// gpclust every cell is distinct (the fused kernels read full-width words
// when the image is unpacked); for pgraph fusion without packing degenerates
// to the byte layout, and the sweep doubles as proof of that no-op.
var packingSettings = []struct {
	label        string
	packed, fuse bool
}{
	{"unpacked", false, false},
	{"unpacked+fused", false, true},
	{"packed", true, false},
	{"packed+fused", true, true},
}

func packingRow(p PackingPoint, plan sched.PlanReport) AblationRow {
	comment := fmt.Sprintf("Data_c→g %.2fs (%.0f%% volume), %.1f MB shipped",
		s(p.H2DNs), 100*p.H2DVolumeNs/max(p.H2DNs, 1), float64(p.H2DBytes)/1e6)
	return timedRow(p.Workload+" "+p.Setting, p.VirtualNs,
		driftComment(comment, p.PredictedNs, plan))
}

// AblatePacking sweeps the packed-image and kernel-fusion levers on both
// consumers of the device: the shingling passes (gpclust, images at the
// graph's MinBits width) and the Smith–Waterman verification (pgraph, 5-bit
// protein residues). Every setting runs a fixed batch plan with
// PredictCost, so the cost model prices the exact layout it executed;
// outputs must be bit-identical across every cell of a workload — packing
// and fusion change bytes moved and launches issued, never a result. scale
// sizes the gpclust graph (Paper20KConfig), pgraphN the metagenome (0: the
// 1200-ORF default).
func AblatePacking(scale float64, o core.Options, pgraphN int) ([]AblationRow, []PackingPoint, error) {
	var (
		rows   []AblationRow
		points []PackingPoint
	)

	g, _ := graph.Planted(Paper20KConfig(scale))
	var goldenClusters [][]uint32
	for _, ps := range packingSettings {
		opt := o
		opt.BatchWords = 200_000
		opt.PredictCost = true
		opt.Packed, opt.Fuse = ps.packed, ps.fuse
		dev := gpusim.MustNew(gpusim.K20Config())
		r, err := core.ClusterGPU(g, dev, opt)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: gpclust %s: %w", ps.label, err)
		}
		if goldenClusters == nil {
			goldenClusters = r.Clustering.Clusters
		} else if !clusteringEqual(goldenClusters, r.Clustering.Clusters) {
			return nil, nil, fmt.Errorf("bench: gpclust %s: clustering diverged from %s",
				ps.label, packingSettings[0].label)
		}
		var plan sched.PlanReport
		plan.Add(r.Pass1.Plan)
		plan.Add(r.Pass2.Plan)
		p := PackingPoint{
			Workload: "gpclust", Setting: ps.label, Packed: ps.packed, Fused: ps.fuse,
			VirtualNs: r.Timings.TotalNs,
			H2DNs:     r.Timings.H2DNs, H2DSetupNs: r.Timings.H2DSetupNs,
			H2DVolumeNs: r.Timings.H2DVolumeNs, H2DBytes: r.Timings.H2DBytes,
			SchedNs: plan.ActualNs, PredictedNs: plan.PredictedNs,
			Output: int64(r.NumClusters()),
		}
		points = append(points, p)
		rows = append(rows, packingRow(p, plan))
	}

	if pgraphN <= 0 {
		pgraphN = 1200
	}
	mgCfg := seq.DefaultMetagenomeConfig(pgraphN)
	mgCfg.Seed = 7
	mg, err := seq.GenerateMetagenome(mgCfg)
	if err != nil {
		return nil, nil, err
	}
	var golden *graph.Graph
	for _, ps := range packingSettings {
		cfg := pgraph.DefaultConfig()
		cfg.GPU = true
		cfg.GPUBatchWords = 40_000
		cfg.PredictCost = true
		cfg.Packed, cfg.Fuse = ps.packed, ps.fuse
		cfg.Device = gpusim.MustNew(gpusim.K20Config())
		pg, st, err := pgraph.Build(mg.Seqs, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: pgraph %s: %w", ps.label, err)
		}
		if golden == nil {
			golden = pg
		} else if !graphEqual(golden, pg) {
			return nil, nil, fmt.Errorf("bench: pgraph %s: edge set diverged from %s",
				ps.label, packingSettings[0].label)
		}
		p := PackingPoint{
			Workload: "pgraph", Setting: ps.label, Packed: ps.packed, Fused: ps.fuse,
			VirtualNs: st.TotalNs,
			H2DNs:     st.H2DNs, H2DSetupNs: st.H2DSetupNs,
			H2DVolumeNs: st.H2DVolumeNs, H2DBytes: st.H2DBytes,
			SchedNs: st.Plan.ActualNs, PredictedNs: st.Plan.PredictedNs,
			Output: st.Edges,
		}
		points = append(points, p)
		rows = append(rows, packingRow(p, st.Plan))
	}
	return rows, points, nil
}
