package bench

import (
	"fmt"
	"io"

	"gpclust/internal/core"
	"gpclust/internal/gos"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/metrics"
)

// MinClusterSize is the evaluation's cluster-size cutoff ("only clusters of
// size ≥ 20 are reported", Section IV-D). Scaled-down runs may override it.
const MinClusterSize = 20

// QualityResult holds everything Tables III–IV and Figure 5 need from one
// comparative run: gpClust and GOS partitions scored against the planted
// benchmark (super-families, the role the GOS profile-expanded families play
// in the paper).
type QualityResult struct {
	Stats   graph.Stats
	MinSize int

	GPClust metrics.Confusion // gpClust vs benchmark (Table III row 1)
	GOS     metrics.Confusion // GOS vs benchmark (Table III row 2)

	// Table IV rows.
	BenchStats   metrics.GroupStats
	GOSStats     metrics.GroupStats
	GPClustStats metrics.GroupStats

	// Cluster densities (mean ± sd): paper reports gpClust 0.75±0.28,
	// GOS 0.40±0.27, benchmark 0.09±0.12.
	BenchDensity, BenchDensityStd     float64
	GOSDensity, GOSDensityStd         float64
	GPClustDensity, GPClustDensityStd float64

	// Figure 5 histograms over metrics.Fig5Bins.
	GroupHistGPClust []int   // Fig 5(a), gpClust
	GroupHistGOS     []int   // Fig 5(a), GOS
	SeqHistGPClust   []int64 // Fig 5(b), gpClust
	SeqHistGOS       []int64 // Fig 5(b), GOS
}

// RunQuality performs the comparative study on a quality graph at the given
// scale. minSize ≤ 0 selects MinClusterSize.
func RunQuality(scale float64, o core.Options, gosOpt gos.Options, minSize int) (*QualityResult, error) {
	g, gt := graph.Planted(QualityConfig(scale))
	return RunQualityOn(g, gt.SuperFamily, o, gosOpt, minSize)
}

// RunQualityOn performs the comparative study on an explicit graph and
// benchmark labeling.
func RunQualityOn(g *graph.Graph, benchLabels []int32, o core.Options, gosOpt gos.Options, minSize int) (*QualityResult, error) {
	if minSize <= 0 {
		minSize = MinClusterSize
	}
	n := g.NumVertices()
	q := &QualityResult{Stats: graph.ComputeStats(g), MinSize: minSize}

	dev := gpusim.MustNew(gpusim.K20Config())
	ours, err := core.ClusterGPU(g, dev, o)
	if err != nil {
		return nil, fmt.Errorf("bench: gpClust: %w", err)
	}
	gosClusters, err := gos.Cluster(g, gosOpt)
	if err != nil {
		return nil, fmt.Errorf("bench: GOS baseline: %w", err)
	}

	oursBig := ours.Clustering.ClustersOfSizeAtLeast(minSize)
	gosBig := filterBySize(gosClusters, minSize)
	benchClusters := clustersFromLabels(benchLabels, n)

	oursL := metrics.LabelsFromClusters(oursBig, n, minSize)
	gosL := metrics.LabelsFromClusters(gosBig, n, minSize)
	q.GPClust = metrics.PairConfusion(oursL, benchLabels, n)
	q.GOS = metrics.PairConfusion(gosL, benchLabels, n)

	q.BenchStats = metrics.ComputeGroupStats(benchClusters)
	q.GOSStats = metrics.ComputeGroupStats(gosBig)
	q.GPClustStats = metrics.ComputeGroupStats(oursBig)

	q.BenchDensity, q.BenchDensityStd = metrics.DensityStats(g, benchClusters)
	q.GOSDensity, q.GOSDensityStd = metrics.DensityStats(g, gosBig)
	q.GPClustDensity, q.GPClustDensityStd = metrics.DensityStats(g, oursBig)

	q.GroupHistGPClust = metrics.SizeHistogram(oursBig)
	q.GroupHistGOS = metrics.SizeHistogram(gosBig)
	q.SeqHistGPClust = metrics.SeqHistogram(oursBig)
	q.SeqHistGOS = metrics.SeqHistogram(gosBig)
	return q, nil
}

func filterBySize(clusters [][]uint32, minSize int) [][]uint32 {
	var out [][]uint32
	for _, cl := range clusters {
		if len(cl) >= minSize {
			out = append(out, cl)
		}
	}
	return out
}

func clustersFromLabels(labels []int32, n int) [][]uint32 {
	byLabel := map[int32][]uint32{}
	for v := 0; v < n; v++ {
		if labels[v] >= 0 {
			byLabel[labels[v]] = append(byLabel[labels[v]], uint32(v))
		}
	}
	out := make([][]uint32, 0, len(byLabel))
	for _, cl := range byLabel {
		out = append(out, cl)
	}
	// deterministic order: largest first, ties by first member
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b []uint32) bool {
	if len(a) != len(b) {
		return len(a) > len(b)
	}
	return len(a) > 0 && a[0] < b[0]
}

// RenderTable3 prints the Table III comparison.
func RenderTable3(w io.Writer, q *QualityResult) {
	fmt.Fprintf(w, "Table III — qualitative comparison against the benchmark (clusters of size ≥ %d)\n", q.MinSize)
	fmt.Fprintf(w, "%-22s %8s %8s %8s %8s\n", "approach", "PPV", "NPV", "SP", "SE")
	p := func(name string, c metrics.Confusion) {
		fmt.Fprintf(w, "%-22s %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n", name,
			100*c.PPV(), 100*c.NPV(), 100*c.Specificity(), 100*c.Sensitivity())
	}
	p("gpClust vs. Benchmark", q.GPClust)
	p("GOS vs. Benchmark", q.GOS)
	fmt.Fprintf(w, "paper: gpClust 97.17%% / 92.43%% / 99.88%% / 17.85%%; GOS 100.00%% / 90.62%% / 100.00%% / 13.92%%\n")
}

// RenderTable4 prints the Table IV partition statistics plus the densities
// discussed alongside it.
func RenderTable4(w io.Writer, q *QualityResult) {
	fmt.Fprintf(w, "Table IV — partition statistics (clusters of size ≥ %d)\n", q.MinSize)
	fmt.Fprintf(w, "%-10s %10s %14s %10s %16s %14s\n", "partition", "#groups", "#seqs", "largest", "avg size", "density")
	p := func(name string, st metrics.GroupStats, d, ds float64) {
		fmt.Fprintf(w, "%-10s %10d %14d %10d %9.0f±%-6.0f %7.2f±%-6.2f\n",
			name, st.Groups, st.Sequences, st.Largest, st.MeanSize, st.StdSize, d, ds)
	}
	p("Benchmark", q.BenchStats, q.BenchDensity, q.BenchDensityStd)
	p("GOS", q.GOSStats, q.GOSDensity, q.GOSDensityStd)
	p("gpClust", q.GPClustStats, q.GPClustDensity, q.GPClustDensityStd)
	fmt.Fprintf(w, "paper: Benchmark 813 groups / 2,004,241 seqs / largest 56,266 / 2465±4372 / density 0.09±0.12\n")
	fmt.Fprintf(w, "paper: GOS 6,152 / 1,236,712 / 20,027 / 201±650 / 0.40±0.27; gpClust 6,646 / 1,414,952 / 19,066 / 213±721 / 0.75±0.28\n")
}

// RenderFig5 prints both histograms of Figure 5 as text series.
func RenderFig5(w io.Writer, q *QualityResult) {
	fmt.Fprintf(w, "Figure 5(a) — number of groups per size bin\n")
	fmt.Fprintf(w, "%-10s %12s %12s\n", "bin", "gpClust", "GOS")
	for i, bin := range metrics.Fig5Bins {
		fmt.Fprintf(w, "%-10s %12d %12d\n", bin.Label, q.GroupHistGPClust[i], q.GroupHistGOS[i])
	}
	fmt.Fprintf(w, "Figure 5(b) — number of sequences per size bin\n")
	fmt.Fprintf(w, "%-10s %12s %12s\n", "bin", "gpClust", "GOS")
	for i, bin := range metrics.Fig5Bins {
		fmt.Fprintf(w, "%-10s %12d %12d\n", bin.Label, q.SeqHistGPClust[i], q.SeqHistGOS[i])
	}
}

// QualityScalingRow is one scale point of the quality-stability study.
type QualityScalingRow struct {
	Scale                    float64
	GPClustPPV, GPClustSE    float64
	GOSPPV, GOSSE            float64
	GPClustGroups, GOSGroups int
}

// RunQualityScaling repeats the Table III comparison across input scales,
// checking that the reproduction's shape — both methods precise, gpClust
// more sensitive — is not an artifact of one particular scale.
func RunQualityScaling(scales []float64, o core.Options, gosOpt gos.Options, minSize int) ([]QualityScalingRow, error) {
	var rows []QualityScalingRow
	for _, sc := range scales {
		q, err := RunQuality(sc, o, gosOpt, minSize)
		if err != nil {
			return nil, err
		}
		rows = append(rows, QualityScalingRow{
			Scale:      sc,
			GPClustPPV: q.GPClust.PPV(), GPClustSE: q.GPClust.Sensitivity(),
			GOSPPV: q.GOS.PPV(), GOSSE: q.GOS.Sensitivity(),
			GPClustGroups: q.GPClustStats.Groups, GOSGroups: q.GOSStats.Groups,
		})
	}
	return rows, nil
}

// RenderQualityScaling prints the stability study.
func RenderQualityScaling(w io.Writer, rows []QualityScalingRow) {
	fmt.Fprintf(w, "Quality vs scale — Table III shape stability\n")
	fmt.Fprintf(w, "%8s | %10s %10s %8s | %10s %10s %8s\n",
		"scale", "gp PPV", "gp SE", "groups", "gos PPV", "gos SE", "groups")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.4g | %9.2f%% %9.2f%% %8d | %9.2f%% %9.2f%% %8d\n",
			r.Scale, 100*r.GPClustPPV, 100*r.GPClustSE, r.GPClustGroups,
			100*r.GOSPPV, 100*r.GOSSE, r.GOSGroups)
	}
}
