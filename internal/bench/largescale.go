package bench

import (
	"fmt"
	"io"

	"gpclust/internal/core"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
)

// LargeScaleResult is the headline demonstration run: clustering the
// Pacific-Ocean-survey-shaped homology graph ("containing 11M vertices and
// 640M edges ... in about 94 minutes").
type LargeScaleResult struct {
	Scale   float64
	Stats   graph.Stats
	Result  *core.Result
	Minutes float64 // simulated wall time of the gpClust run
}

// RunLargeScale builds the scaled Pacific Ocean graph and clusters it with
// gpClust, reporting simulated minutes.
func RunLargeScale(scale float64, o core.Options) (*LargeScaleResult, error) {
	g, _ := graph.Planted(LargeScaleConfig(scale))
	dev := gpusim.MustNew(gpusim.K20Config())
	res, err := core.ClusterGPU(g, dev, o)
	if err != nil {
		return nil, err
	}
	return &LargeScaleResult{
		Scale:   scale,
		Stats:   graph.ComputeStats(g),
		Result:  res,
		Minutes: res.Timings.TotalNs / 1e9 / 60,
	}, nil
}

// RenderLargeScale prints the run next to the paper's headline number.
func RenderLargeScale(w io.Writer, r *LargeScaleResult) {
	fmt.Fprintf(w, "Large-scale demonstration (scale %.4g of 11M vertices / 640M edges)\n", r.Scale)
	fmt.Fprintf(w, "vertices=%d edges=%d clusters=%d\n",
		r.Stats.NonSingletons, r.Stats.Edges, r.Result.NumClusters())
	fmt.Fprintf(w, "gpClust virtual wall time: %.1f minutes (%s)\n", r.Minutes, r.Result.Timings.String())
	fmt.Fprintf(w, "paper (full scale): ~94 minutes\n")
}
