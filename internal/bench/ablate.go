package bench

import (
	"fmt"
	"io"

	"gpclust/internal/core"
	"gpclust/internal/gos"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/mcl"
	"gpclust/internal/metrics"
	"gpclust/internal/sched"
)

// AblationRow is one configuration's outcome in an ablation sweep.
type AblationRow struct {
	Label   string
	Value   float64
	Unit    string
	Comment string
}

// AblateAsync quantifies the paper's future-work claim: "the data transfer
// overhead ... can be eliminated through asynchronous data transfer". It
// runs the same graph synchronously and with streams and reports the totals
// and the D2H overhead recovered.
func AblateAsync(scale float64, o core.Options) ([]AblationRow, error) {
	g, _ := graph.Planted(Paper2MConfig(scale))
	sync := o
	sync.AsyncTransfer = false
	devS := gpusim.MustNew(gpusim.K20Config())
	rs, err := core.ClusterGPU(g, devS, sync)
	if err != nil {
		return nil, err
	}
	async := o
	async.AsyncTransfer = true
	devA := gpusim.MustNew(gpusim.K20Config())
	ra, err := core.ClusterGPU(g, devA, async)
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{"sync total", s(rs.Timings.TotalNs), "s", "Thrust-style synchronous transfers (the paper's implementation)"},
		{"sync Data_g->c", s(rs.Timings.D2HNs), "s", "per-trial shingle transfer overhead on the critical path"},
		{"async total", s(ra.Timings.TotalNs), "s", "double-buffered streams (the paper's proposed improvement)"},
		{"saved", s(rs.Timings.TotalNs - ra.Timings.TotalNs), "s", "overhead hidden by overlapping transfer, kernels and CPU aggregation"},
	}, nil
}

// AblateBatchSize sweeps the device batch budget, exercising Algorithm 2's
// partitioned processing: smaller batches mean more H2D replays, more split
// lists and more kernel launches.
func AblateBatchSize(scale float64, o core.Options, budgets []int) ([]AblationRow, error) {
	g, _ := graph.Planted(Paper20KConfig(scale))
	var rows []AblationRow
	for _, b := range budgets {
		opt := o
		opt.BatchWords = b
		opt.PredictCost = true
		dev := gpusim.MustNew(gpusim.K20Config())
		r, err := core.ClusterGPU(g, dev, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: batch %d: %w", b, err)
		}
		var plan sched.PlanReport
		plan.Add(r.Pass1.Plan)
		plan.Add(r.Pass2.Plan)
		rows = append(rows, AblationRow{
			Label: fmt.Sprintf("batch=%d words", b),
			Value: s(r.Timings.TotalNs), Unit: "s",
			Comment: fmt.Sprintf("%d batches, %d split lists, GPU %.2fs, H2D %.2fs, sched %.2fs (predicted %.2fs)",
				r.Pass1.Batches, r.Pass1.SplitLists, s(r.Timings.GPUNs), s(r.Timings.H2DNs),
				s(plan.ActualNs), s(plan.PredictedNs)),
		})
	}
	return rows, nil
}

// AblateFullSort compares the fused top-s selection kernel with Algorithm
// 1's literal segmented-sort-then-select.
func AblateFullSort(scale float64, o core.Options) ([]AblationRow, error) {
	g, _ := graph.Planted(Paper20KConfig(scale))
	fused := o
	fused.UseFullSort = false
	devF := gpusim.MustNew(gpusim.K20Config())
	rf, err := core.ClusterGPU(g, devF, fused)
	if err != nil {
		return nil, err
	}
	full := o
	full.UseFullSort = true
	devS := gpusim.MustNew(gpusim.K20Config())
	rs, err := core.ClusterGPU(g, devS, full)
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{"fused top-s GPU", s(rf.Timings.GPUNs), "s", "selection kernel (identical output)"},
		{"full-sort GPU", s(rs.Timings.GPUNs), "s", "Algorithm 1 literally: segmented sort + select"},
		{"sort overhead", s(rs.Timings.GPUNs - rf.Timings.GPUNs), "s", "device work saved by fusing"},
	}, nil
}

// AblateShingleParams sweeps (s, c), the knobs the paper credits for
// gpClust's higher sensitivity ("contributed by the high configurable s and
// c parameters used in our approach").
func AblateShingleParams(scale float64, base core.Options, minSize int) ([]AblationRow, error) {
	g, gt := graph.Planted(QualityConfig(scale))
	n := g.NumVertices()
	type setting struct {
		s1, c1 int
	}
	settings := []setting{{2, 25}, {2, 100}, {2, 200}, {3, 200}, {4, 200}, {1, 100}}
	var rows []AblationRow
	for _, st := range settings {
		o := base
		o.S1, o.C1 = st.s1, st.c1
		dev := gpusim.MustNew(gpusim.K20Config())
		r, err := core.ClusterGPU(g, dev, o)
		if err != nil {
			return nil, err
		}
		big := r.Clustering.ClustersOfSizeAtLeast(minSize)
		labels := metrics.LabelsFromClusters(big, n, minSize)
		c := metrics.PairConfusion(labels, gt.SuperFamily, n)
		rows = append(rows, AblationRow{
			Label: fmt.Sprintf("s1=%d c1=%d", st.s1, st.c1),
			Value: 100 * c.Sensitivity(), Unit: "% SE",
			Comment: fmt.Sprintf("PPV %.2f%%, %d clusters ≥ %d", 100*c.PPV(), len(big), minSize),
		})
	}
	return rows, nil
}

// AblateReportModes compares the union-find partition with the overlapping
// connected-component reporting (Phase III's two options).
func AblateReportModes(scale float64, o core.Options) ([]AblationRow, error) {
	g, _ := graph.Planted(Paper20KConfig(scale))
	uf := o
	uf.Mode = core.ReportUnionFind
	devU := gpusim.MustNew(gpusim.K20Config())
	ru, err := core.ClusterGPU(g, devU, uf)
	if err != nil {
		return nil, err
	}
	ov := o
	ov.Mode = core.ReportOverlapping
	devO := gpusim.MustNew(gpusim.K20Config())
	ro, err := core.ClusterGPU(g, devO, ov)
	if err != nil {
		return nil, err
	}
	covered := map[uint32]bool{}
	dupes := 0
	for _, cl := range ro.Clustering.Clusters {
		for _, v := range cl {
			if covered[v] {
				dupes++
			}
			covered[v] = true
		}
	}
	return []AblationRow{
		{"union-find clusters", float64(ru.NumClusters()), "", "strict partition (the paper's choice)"},
		{"overlapping clusters", float64(ro.NumClusters()), "", fmt.Sprintf("%d vertices appear in ≥ 2 clusters", dupes)},
	}, nil
}

// AblateGOSK sweeps the GOS baseline's fixed k, the parameter whose
// inflexibility the paper criticizes.
func AblateGOSK(scale float64, minSize int) ([]AblationRow, error) {
	g, gt := graph.Planted(QualityConfig(scale))
	n := g.NumVertices()
	var rows []AblationRow
	for _, k := range []int{3, 5, 10, 20} {
		clusters, err := gos.Cluster(g, gos.Options{K: k, RequireEdge: true})
		if err != nil {
			return nil, err
		}
		big := filterBySize(clusters, minSize)
		labels := metrics.LabelsFromClusters(big, n, minSize)
		c := metrics.PairConfusion(labels, gt.SuperFamily, n)
		rows = append(rows, AblationRow{
			Label: fmt.Sprintf("GOS k=%d", k),
			Value: 100 * c.Sensitivity(), Unit: "% SE",
			Comment: fmt.Sprintf("PPV %.2f%%, %d clusters ≥ %d", 100*c.PPV(), len(big), minSize),
		})
	}
	return rows, nil
}

// RenderAblation prints one sweep.
func RenderAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "Ablation — %s\n", title)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-24s %10.3f %-5s %s\n", r.Label, r.Value, r.Unit, r.Comment)
	}
}

// AblateGPUAggregation measures the beyond-paper extension that moves the
// shingle-key computation and the per-trial tuple sorting to the device:
// Table I shows the CPU column dominating the accelerated pipeline, and
// this is the obvious next chunk of it to offload.
func AblateGPUAggregation(scale float64, o core.Options) ([]AblationRow, error) {
	g, _ := graph.Planted(Paper20KConfig(scale))
	devBase := gpusim.MustNew(gpusim.K20Config())
	base, err := core.ClusterGPU(g, devBase, o)
	if err != nil {
		return nil, err
	}
	agg := o
	agg.GPUAggregate = true
	devAgg := gpusim.MustNew(gpusim.K20Config())
	ra, err := core.ClusterGPU(g, devAgg, agg)
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{"CPU-aggregate total", s(base.Timings.TotalNs), "s", fmt.Sprintf("CPU %.2fs GPU %.2fs (the paper's division of labor)", s(base.Timings.CPUNs), s(base.Timings.GPUNs))},
		{"GPU-aggregate total", s(ra.Timings.TotalNs), "s", fmt.Sprintf("CPU %.2fs GPU %.2fs (key+sort on device)", s(ra.Timings.CPUNs), s(ra.Timings.GPUNs))},
		{"saved", s(base.Timings.TotalNs - ra.Timings.TotalNs), "s", "identical clustering output"},
	}, nil
}

// AblateMultiGPU sweeps the device count for the batch-distributed pipeline
// (a beyond-paper scaling extension). Two regimes appear, both real:
// above occupancy saturation the bottleneck device's kernel time shrinks
// with the device count while the total stays pinned by the shared host
// aggregation (Table I's Amdahl division); below saturation, splitting the
// batch stream lowers every launch's occupancy and cancels the per-device
// gain — the same "more workload ⇒ better speedup" effect the paper reports
// for a single device (Section IV-C), compounded. The literal Algorithm 1
// (full segmented sort) is used so the accelerated part carries measurable
// weight.
func AblateMultiGPU(scale float64, o core.Options, deviceCounts []int) ([]AblationRow, error) {
	o.UseFullSort = true
	g, _ := graph.Planted(Paper2MConfig(scale))
	var rows []AblationRow
	for _, n := range deviceCounts {
		devs := make([]*gpusim.Device, n)
		for i := range devs {
			devs[i] = gpusim.MustNew(gpusim.K20Config())
		}
		r, err := core.ClusterMultiGPU(g, devs, o)
		if err != nil {
			return nil, fmt.Errorf("bench: %d devices: %w", n, err)
		}
		maxDevGPU := 0.0
		for _, d := range devs {
			if t := d.Metrics().KernelTimeNs; t > maxDevGPU {
				maxDevGPU = t
			}
		}
		rows = append(rows, AblationRow{
			Label: fmt.Sprintf("%d device(s)", n),
			Value: s(maxDevGPU), Unit: "s GPU",
			Comment: fmt.Sprintf("bottleneck device kernels; total %.2fs (%d batches, CPU %.2fs — Amdahl-bound)",
				s(r.Timings.TotalNs), r.Pass1.Batches, s(r.Timings.CPUNs)),
		})
	}
	return rows, nil
}

// AblateHostParallel compares the four execution strategies on one graph:
// serial pClust, the multi-core host backend (real wall-clock speedup — the
// virtual cost model prices operations, not cores), and gpClust with the
// sequential and the double-buffered pipelined batch loops (virtual-clock
// speedup from transfer coalescing and overlap). All four produce the
// identical clustering.
func AblateHostParallel(scale float64, o core.Options, workers int) ([]AblationRow, error) {
	g, _ := graph.Planted(Paper20KConfig(scale))
	rs, err := core.ClusterSerial(g, o)
	if err != nil {
		return nil, err
	}
	par := o
	par.Workers = workers
	rp, err := core.ClusterParallel(g, par)
	if err != nil {
		return nil, err
	}
	devSeq := gpusim.MustNew(gpusim.K20Config())
	rg, err := core.ClusterGPU(g, devSeq, o)
	if err != nil {
		return nil, err
	}
	pipe := o
	pipe.PipelineBatches = true
	devPipe := gpusim.MustNew(gpusim.K20Config())
	rpp, err := core.ClusterGPU(g, devPipe, pipe)
	if err != nil {
		return nil, err
	}
	for _, r := range []*core.Result{rp, rg, rpp} {
		if r.NumClusters() != rs.NumClusters() {
			return nil, fmt.Errorf("bench: %s backend clustering diverged (%d vs %d clusters)",
				r.Backend, r.NumClusters(), rs.NumClusters())
		}
	}
	wall := func(ns int64) float64 { return float64(ns) / 1e9 }
	return []AblationRow{
		{"serial host", wall(rs.Wall.TotalNs), "s wall",
			fmt.Sprintf("pClust reference; virtual total %.2fs", s(rs.Timings.TotalNs))},
		{fmt.Sprintf("parallel host x%d", rp.Workers), wall(rp.Wall.TotalNs), "s wall",
			fmt.Sprintf("%d-worker pools; %.2fx vs serial wall", rp.Workers,
				float64(rs.Wall.TotalNs)/float64(max(rp.Wall.TotalNs, 1)))},
		{"gpClust sequential", s(rg.Timings.TotalNs), "s",
			fmt.Sprintf("virtual clock; H2D %.2fs D2H %.2fs", s(rg.Timings.H2DNs), s(rg.Timings.D2HNs))},
		{"gpClust pipelined", s(rpp.Timings.TotalNs), "s",
			fmt.Sprintf("coalesced+overlapped transfers; H2D %.2fs D2H %.2fs, saved %.2fs",
				s(rpp.Timings.H2DNs), s(rpp.Timings.D2HNs), s(rg.Timings.TotalNs-rpp.Timings.TotalNs))},
	}, nil
}

// MemoryRow is one scale point of the peak-memory study.
type MemoryRow struct {
	Scale         float64
	MPlusN        int64 // m + n of the input graph
	EPrime        int64 // |E'|: first-level shingle graph edges
	PeakHostBytes int64
	PeakDevBytes  int64
	Ratio         float64 // peak host bytes per max{m+n, |E'|}
}

// RunMemoryScaling measures peak memory across input scales, checking the
// paper's complexity claim: "The peak memory complexity of the algorithm is
// O(max{m + n, |E'|})" (Section III-B). The per-unit ratio should stay
// bounded as the input grows.
func RunMemoryScaling(scales []float64, o core.Options) ([]MemoryRow, error) {
	var rows []MemoryRow
	for _, sc := range scales {
		g, _ := graph.Planted(Paper2MConfig(sc))
		dev := gpusim.MustNew(gpusim.K20Config())
		r, err := core.ClusterGPU(g, dev, o)
		if err != nil {
			return nil, err
		}
		row := MemoryRow{
			Scale:         sc,
			MPlusN:        g.NumEdges() + int64(g.NumVertices()),
			EPrime:        r.Pass1.Tuples,
			PeakHostBytes: r.PeakHostBytes(),
			PeakDevBytes:  dev.PeakAllocated(),
		}
		unit := row.MPlusN
		if row.EPrime > unit {
			unit = row.EPrime
		}
		row.Ratio = float64(row.PeakHostBytes) / float64(unit)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderMemoryScaling prints the study.
func RenderMemoryScaling(w io.Writer, rows []MemoryRow) {
	fmt.Fprintf(w, "Peak memory vs O(max{m+n, |E'|}) — Section III-B complexity claim\n")
	fmt.Fprintf(w, "%8s %12s %12s %14s %14s %10s\n", "scale", "m+n", "|E'|", "peak host B", "peak dev B", "B/unit")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.4g %12d %12d %14d %14d %10.1f\n",
			r.Scale, r.MPlusN, r.EPrime, r.PeakHostBytes, r.PeakDevBytes, r.Ratio)
	}
}

// CompareMCL scores all three clustering methods — gpClust, the GOS
// k-neighbor linkage, and Markov Clustering (the algorithm metagenomic
// pipelines conventionally use where the paper uses Shingling) — against
// the planted benchmark. MCL is a beyond-paper baseline: the paper's
// novelty is precisely that Shingling is rare in this domain.
func CompareMCL(scale float64, o core.Options, gosOpt gos.Options, minSize int) ([]AblationRow, error) {
	if minSize <= 0 {
		minSize = MinClusterSize
	}
	g, gt := graph.Planted(QualityConfig(scale))
	n := g.NumVertices()

	score := func(name string, clusters [][]uint32) AblationRow {
		big := filterBySize(clusters, minSize)
		labels := metrics.LabelsFromClusters(big, n, minSize)
		c := metrics.PairConfusion(labels, gt.SuperFamily, n)
		mean, _ := metrics.DensityStats(g, big)
		return AblationRow{
			Label: name,
			Value: 100 * c.Sensitivity(), Unit: "% SE",
			Comment: fmt.Sprintf("PPV %.2f%%, density %.2f, %d clusters ≥ %d",
				100*c.PPV(), mean, len(big), minSize),
		}
	}

	dev := gpusim.MustNew(gpusim.K20Config())
	ours, err := core.ClusterGPU(g, dev, o)
	if err != nil {
		return nil, err
	}
	gosClusters, err := gos.Cluster(g, gosOpt)
	if err != nil {
		return nil, err
	}
	mclClusters, err := mcl.Cluster(g, mcl.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		score("gpClust (Shingling)", ours.Clustering.Clusters),
		score("GOS k-neighbor", gosClusters),
		score("MCL (TribeMCL-style)", mclClusters),
	}, nil
}
