package gpclust_test

import (
	"reflect"
	"testing"

	"gpclust"
)

// TestGoldenCascadeConservative is the cascade half of the golden gate: at
// the conservative LSH preset the cascaded pGraph (LSH pass → component
// restriction → full Smith–Waterman on survivors) must reproduce the exact
// filter's homology graph bit-identically — on the host and on the GPU —
// and every clustering backend must then agree on the partition.
func TestGoldenCascadeConservative(t *testing.T) {
	mgCfg := gpclust.DefaultMetagenomeConfig(250)
	mgCfg.Seed = 7
	mg, err := gpclust.GenerateMetagenome(mgCfg)
	if err != nil {
		t.Fatal(err)
	}

	exactCfg := gpclust.DefaultPGraphConfig()
	gExact, exactStats, err := gpclust.BuildHomologyGraph(mg.Seqs, exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	if exactStats.Edges == 0 {
		t.Fatal("exact build produced no edges; golden test needs a non-trivial graph")
	}

	casCfg := exactCfg
	casCfg.Filter = gpclust.FilterCascade
	casCfg.LSHBands = gpclust.ConservativeBands
	gCas, casStats, err := gpclust.BuildHomologyGraph(mg.Seqs, casCfg)
	if err != nil {
		t.Fatal(err)
	}
	if casStats.Filter != gpclust.FilterCascade {
		t.Fatalf("Stats.Filter = %q, want %q", casStats.Filter, gpclust.FilterCascade)
	}
	if !reflect.DeepEqual(gExact.Offsets, gCas.Offsets) || !reflect.DeepEqual(gExact.Adj, gCas.Adj) {
		t.Fatal("host cascade graph differs from the exact-filter graph")
	}

	gpuCfg := casCfg
	gpuCfg.GPU = true
	// The batch budget is shared by the LSH pass and verification; the
	// conservative bucket pass needs 4 words per shingle occurrence, so the
	// budget must hold the whole corpus' shingles while still being small
	// enough to keep verification honest.
	gpuCfg.GPUBatchWords = 200_000
	gGPU, _, err := gpclust.BuildHomologyGraph(mg.Seqs, gpuCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gExact.Offsets, gGPU.Offsets) || !reflect.DeepEqual(gExact.Adj, gGPU.Adj) {
		t.Fatal("GPU cascade graph differs from the exact-filter graph")
	}

	opts := gpclust.DefaultOptions()
	opts.C1, opts.C2 = 60, 30

	serial, err := gpclust.Cluster(gExact, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Clustering.Clusters
	if len(want) == 0 {
		t.Fatal("no clusters; golden test needs a non-trivial partition")
	}
	for _, g := range map[string]*gpclust.Graph{"host-cascade": gCas, "gpu-cascade": gGPU} {
		ser, err := gpclust.Cluster(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		parOpts := opts
		parOpts.Workers = 3
		par, err := gpclust.ClusterParallel(g, parOpts)
		if err != nil {
			t.Fatal(err)
		}
		gpu, err := gpclust.ClusterGPU(g, gpclust.NewK20(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for name, r := range map[string]*gpclust.Result{"Cluster": ser, "ClusterParallel": par, "ClusterGPU": gpu} {
			if !reflect.DeepEqual(r.Clustering.Clusters, want) {
				t.Fatalf("%s on the cascade graph diverged from the exact-path partition", name)
			}
		}
	}
}
