// Package gpclust is a reproduction of "GPU-accelerated protein family
// identification for metagenomics" (Wu & Kalyanaraman, IPDPSW 2013): the
// gpClust CPU–GPU implementation of the randomized Shingling dense-subgraph
// heuristic (Gibson, Kumar & Tomkins 2005), together with every substrate
// the paper's pipeline depends on — a SIMT GPU simulator standing in for
// the CUDA/Thrust platform, the pGraph homology-graph construction
// (suffix-structure pair filter + Smith–Waterman), a synthetic-metagenome
// generator standing in for the GOS ocean data, the GOS k-neighbor-linkage
// clustering baseline, and the paper's quality metrics.
//
// Quick start:
//
//	g, _ := gpclust.Planted(gpclust.DefaultPlantedConfig(20000))
//	dev := gpclust.NewK20()
//	res, err := gpclust.ClusterGPU(g, dev, gpclust.DefaultOptions())
//	// res.Clustering.Clusters are the protein-family "core sets";
//	// res.Timings is the Table I component breakdown (virtual clock).
//
// The serial reference implementation (pClust) is gpclust.Cluster; for the
// same Options both backends return bit-identical clusterings.
package gpclust

import (
	"gpclust/internal/align"
	"gpclust/internal/assemble"
	"gpclust/internal/core"
	"gpclust/internal/gos"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/mcl"
	"gpclust/internal/metrics"
	"gpclust/internal/pgraph"
	"gpclust/internal/seq"
)

// Graph is an undirected similarity graph in CSR form.
type Graph = graph.Graph

// Edge is one undirected edge.
type Edge = graph.Edge

// GraphBuilder accumulates edges into a Graph.
type GraphBuilder = graph.Builder

// GraphStats summarizes a graph (Table II).
type GraphStats = graph.Stats

// PlantedConfig configures the planted dense-subgraph generator.
type PlantedConfig = graph.PlantedConfig

// GroundTruth is the planted family/super-family assignment.
type GroundTruth = graph.GroundTruth

// NewGraphBuilder returns a builder for a graph with at least n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// Planted generates a graph with planted dense subgraphs and ground truth.
func Planted(cfg PlantedConfig) (*Graph, *GroundTruth) { return graph.Planted(cfg) }

// DefaultPlantedConfig targets the shape of the paper's 2M-sequence graph
// at n vertices.
func DefaultPlantedConfig(n int) PlantedConfig { return graph.DefaultPlantedConfig(n) }

// ComputeGraphStats measures a graph the way Table II does.
func ComputeGraphStats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// RMAT generates a scale-free web-like graph (2^scaleLog2 vertices, ≤ m
// edges) with the recursive-matrix model — the host-graph shape of the
// Shingling heuristic's original application.
func RMAT(scaleLog2, m int, a, b, c float64, seed int64) *Graph {
	return graph.RMAT(scaleLog2, m, a, b, c, seed)
}

// Options configures a clustering run; DefaultOptions returns the paper's
// published parameters (s1=2, c1=200, s2=2, c2=100, union-find reporting).
type Options = core.Options

// Result is a clustering run's output: the clusters, the Table I timing
// breakdown on the virtual clock, and per-pass statistics.
type Result = core.Result

// Clustering is the output partition (or cover, in overlapping mode).
type Clustering = core.Clustering

// Timings is the Table I component breakdown in simulated nanoseconds.
type Timings = core.Timings

// ReportMode selects Phase III's cluster-enumeration strategy.
type ReportMode = core.ReportMode

// Reporting strategies (Section III-B, Phase III).
const (
	ReportUnionFind   = core.ReportUnionFind
	ReportOverlapping = core.ReportOverlapping
)

// DefaultOptions returns the paper's parameter settings.
func DefaultOptions() Options { return core.DefaultOptions() }

// Cluster runs the serial pClust shingling pipeline.
func Cluster(g *Graph, o Options) (*Result, error) { return core.ClusterSerial(g, o) }

// ClusterParallel runs the shingling pipeline across a host worker pool
// (Options.Workers, 0 = GOMAXPROCS): both shingling passes, the sharded
// aggregation, and the union-find reporting are parallelized; output is
// bit-identical to Cluster for the same Options.
func ClusterParallel(g *Graph, o Options) (*Result, error) { return core.ClusterParallel(g, o) }

// ClusterGPU runs the gpClust CPU–GPU pipeline on the given device.
func ClusterGPU(g *Graph, dev *Device, o Options) (*Result, error) {
	return core.ClusterGPU(g, dev, o)
}

// ClusterMultiGPU distributes the batch stream of Algorithm 2 over several
// devices (round-robin); output is bit-identical to Cluster/ClusterGPU.
func ClusterMultiGPU(g *Graph, devs []*Device, o Options) (*Result, error) {
	return core.ClusterMultiGPU(g, devs, o)
}

// ClusterByComponent decomposes the graph into connected components (the
// pClust strategy of Section I-B) and shingles each independently on a
// worker pool; clusters never span components, so decomposition is exact.
func ClusterByComponent(g *Graph, o Options, workers int) (*Result, error) {
	return core.ClusterByComponent(g, o, workers)
}

// Device is the simulated GPU; DeviceConfig describes its architecture.
type Device = gpusim.Device

// DeviceConfig describes a simulated GPU's architecture and cost model.
type DeviceConfig = gpusim.Config

// DeviceMetrics is the device's virtual-clock accounting snapshot.
type DeviceMetrics = gpusim.Metrics

// K20Config returns the configuration of the paper's NVIDIA Tesla K20.
func K20Config() DeviceConfig { return gpusim.K20Config() }

// NewDevice creates a simulated GPU.
func NewDevice(cfg DeviceConfig) (*Device, error) { return gpusim.New(cfg) }

// NewK20 creates the paper's experimental device (panics only if the
// built-in configuration were invalid).
func NewK20() *Device { return gpusim.MustNew(gpusim.K20Config()) }

// Sequence is one protein/ORF sequence.
type Sequence = seq.Sequence

// Metagenome is a generated ORF data set with ground truth.
type Metagenome = seq.Metagenome

// MetagenomeConfig configures the synthetic metagenome generator.
type MetagenomeConfig = seq.MetagenomeConfig

// DefaultMetagenomeConfig returns GOS-like family structure at n sequences.
func DefaultMetagenomeConfig(n int) MetagenomeConfig { return seq.DefaultMetagenomeConfig(n) }

// GenerateMetagenome produces a synthetic ORF data set.
func GenerateMetagenome(cfg MetagenomeConfig) (*Metagenome, error) {
	return seq.GenerateMetagenome(cfg)
}

// ShotgunConfig configures shotgun-read simulation from a metagenome.
type ShotgunConfig = seq.ShotgunConfig

// ShotgunRead is one simulated shotgun DNA fragment.
type ShotgunRead = seq.ShotgunRead

// DefaultShotgunConfig returns a typical shotgun-sequencing configuration.
func DefaultShotgunConfig() ShotgunConfig { return seq.DefaultShotgunConfig() }

// SimulateShotgun reverse-translates a metagenome into genomic regions and
// shreds them into reads (the paper's §I data-preparation front half).
func SimulateShotgun(m *Metagenome, cfg ShotgunConfig) ([]ShotgunRead, error) {
	return seq.SimulateShotgun(m, cfg)
}

// ORFsFromReads extracts putative proteins from reads by six-frame
// translation ("translated into six frames to result in Open Reading
// Frames").
func ORFsFromReads(reads []ShotgunRead, minLen int) []Sequence {
	return seq.ORFsFromReads(reads, minLen)
}

// AssembleConfig configures the greedy overlap assembler.
type AssembleConfig = assemble.Config

// Contig is one assembled sequence.
type Contig = assemble.Contig

// DefaultAssembleConfig returns Sanger-style assembly settings.
func DefaultAssembleConfig() AssembleConfig { return assemble.DefaultConfig() }

// Assemble merges shotgun reads into contigs by greedy exact suffix–prefix
// overlap (the "assembled" step of §I's pipeline).
func Assemble(reads []ShotgunRead, cfg AssembleConfig) ([]Contig, error) {
	return assemble.Assemble(reads, cfg)
}

// ContigN50 is the standard assembly-contiguity statistic.
func ContigN50(contigs []Contig) int { return assemble.N50(contigs) }

// ORFsFromContigs extracts putative proteins from contigs by six-frame
// translation.
func ORFsFromContigs(contigs []Contig, minLen int) []Sequence {
	return assemble.ORFs(contigs, minLen)
}

// AlignScore returns the Smith–Waterman local-alignment score of two
// protein sequences over BLOSUM62 with the default affine-gap penalties —
// the verification scorer of the pGraph phase, exposed for direct use.
func AlignScore(a, b []byte) int {
	return align.ScoreOnly(a, b, align.DefaultParams())
}

// PGraphConfig configures homology-graph construction.
type PGraphConfig = pgraph.Config

// PGraphStats reports the construction pipeline's work.
type PGraphStats = pgraph.Stats

// DefaultPGraphConfig returns settings suitable for synthetic metagenomes.
func DefaultPGraphConfig() PGraphConfig { return pgraph.DefaultConfig() }

// Candidate filter backends for PGraphConfig.Filter, and the conservative
// LSH preset (PGraphConfig.LSHBands = ConservativeBands buckets on raw
// shingles, making the candidate set a superset of the exact filter's).
const (
	FilterExact       = pgraph.FilterExact
	FilterLSH         = pgraph.FilterLSH
	FilterCascade     = pgraph.FilterCascade
	ConservativeBands = pgraph.ConservativeBands
)

// BuildHomologyGraph constructs the sequence-similarity graph: exact-match
// filtering via a generalized suffix structure, then Smith–Waterman
// verification (the pGraph phase of the pipeline).
func BuildHomologyGraph(seqs []Sequence, cfg PGraphConfig) (*Graph, PGraphStats, error) {
	return pgraph.Build(seqs, cfg)
}

// GOSOptions configures the GOS k-neighbor-linkage baseline.
type GOSOptions = gos.Options

// DefaultGOSOptions returns the GOS study's configuration (k = 10).
func DefaultGOSOptions() GOSOptions { return gos.DefaultOptions() }

// ClusterGOS partitions the graph with the GOS k-neighbor linkage baseline.
func ClusterGOS(g *Graph, o GOSOptions) ([][]uint32, error) { return gos.Cluster(g, o) }

// MCLOptions configures the Markov Clustering baseline.
type MCLOptions = mcl.Options

// DefaultMCLOptions returns TribeMCL-style settings (inflation 2.0).
func DefaultMCLOptions() MCLOptions { return mcl.DefaultOptions() }

// ClusterMCL partitions the graph with Markov Clustering (van Dongen 2000),
// the algorithm most metagenomic pipelines use where the paper uses
// Shingling — included as an extended comparison baseline.
func ClusterMCL(g *Graph, o MCLOptions) ([][]uint32, error) { return mcl.Cluster(g, o) }

// Confusion is the pairwise TP/FP/FN/TN classification of Section IV-D.
type Confusion = metrics.Confusion

// PairConfusion classifies every pair of the n-element universe given the
// two partitions' per-vertex labels (-1 = unassigned).
func PairConfusion(test, bench []int32, n int) Confusion {
	return metrics.PairConfusion(test, bench, n)
}

// LabelsFromClusters converts clusters to labels, dropping clusters smaller
// than minSize (the paper evaluates size ≥ 20 only).
func LabelsFromClusters(clusters [][]uint32, n, minSize int) []int32 {
	return metrics.LabelsFromClusters(clusters, n, minSize)
}

// Density is the intra-connectivity measure of Equation 6.
func Density(g *Graph, members []uint32) float64 { return metrics.Density(g, members) }

// DensityStats is the mean ± sd cluster density across clusters.
func DensityStats(g *Graph, clusters [][]uint32) (mean, std float64) {
	return metrics.DensityStats(g, clusters)
}
