module gpclust

go 1.22
