// Command quality scores a clustering (the cluster-per-line file gpclust
// writes) against a ground-truth table (the TSV genseq writes), computing
// the paper's Section IV-D measurements: pairwise PPV, NPV, specificity and
// sensitivity, plus group statistics and — when the similarity graph is
// supplied — cluster densities (Equation 6).
//
// Usage:
//
//	quality -clusters clusters.txt -truth truth.tsv -minsize 20
//	quality -clusters clusters.txt -truth truth.tsv -graph graph.txt -column superfamily
//
// With -compare a second cluster file is scored pairwise against the first
// (PPV, sensitivity and their F-score), the measurement the LSH-cascade
// experiments use to quantify how far an approximate filter's final
// clustering drifts from the exact pipeline's.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpclust/internal/graph"
	"gpclust/internal/metrics"
)

func main() {
	var (
		clustersPath = flag.String("clusters", "", "cluster file: one cluster per line, whitespace-separated vertex ids (required)")
		truthPath    = flag.String("truth", "", "ground-truth TSV from genseq: id, family, superfamily (required)")
		graphPath    = flag.String("graph", "", "optional similarity graph (edge list or binary) for density")
		column       = flag.String("column", "superfamily", "truth column to score against: family|superfamily")
		minSize      = flag.Int("minsize", 20, "evaluate clusters of at least this many members (paper: 20)")
		comparePath  = flag.String("compare", "", "optional second cluster file scored pairwise against -clusters (PPV/SE/F)")
	)
	flag.Parse()
	if *clustersPath == "" || *truthPath == "" {
		fmt.Fprintln(os.Stderr, "quality: -clusters and -truth are required")
		flag.Usage()
		os.Exit(2)
	}

	bench, n, err := readTruth(*truthPath, *column)
	fatal(err)
	clusters, err := readClusters(*clustersPath, n)
	fatal(err)

	kept := clusters[:0]
	for _, cl := range clusters {
		if len(cl) >= *minSize {
			kept = append(kept, cl)
		}
	}
	labels := metrics.LabelsFromClusters(kept, n, *minSize)
	c := metrics.PairConfusion(labels, bench, n)
	st := metrics.ComputeGroupStats(kept)

	fmt.Printf("clusters ≥ %d: %d groups, %d sequences, largest %d, avg %.0f±%.0f\n",
		*minSize, st.Groups, st.Sequences, st.Largest, st.MeanSize, st.StdSize)
	fmt.Printf("vs %s: PPV=%.2f%% NPV=%.2f%% SP=%.2f%% SE=%.2f%%  (TP=%d FP=%d FN=%d TN=%d)\n",
		*column, 100*c.PPV(), 100*c.NPV(), 100*c.Specificity(), 100*c.Sensitivity(),
		c.TP, c.FP, c.FN, c.TN)

	if *graphPath != "" {
		g, err := loadGraph(*graphPath)
		fatal(err)
		if g.NumVertices() < n {
			fatal(fmt.Errorf("graph has %d vertices, truth covers %d", g.NumVertices(), n))
		}
		mean, std := metrics.DensityStats(g, kept)
		fmt.Printf("cluster density: %.2f±%.2f\n", mean, std)
	}

	if *comparePath != "" {
		other, err := readClusters(*comparePath, n)
		fatal(err)
		keptOther := other[:0]
		for _, cl := range other {
			if len(cl) >= *minSize {
				keptOther = append(keptOther, cl)
			}
		}
		// -clusters is the benchmark, -compare the test partition, so PPV
		// reads "fraction of the compared clustering's co-clustered pairs the
		// reference also co-clusters".
		oc := metrics.PairConfusion(metrics.LabelsFromClusters(keptOther, n, *minSize), labels, n)
		ppv, se := oc.PPV(), oc.Sensitivity()
		f := 0.0
		if ppv+se > 0 {
			f = 2 * ppv * se / (ppv + se)
		}
		fmt.Printf("vs %s: PPV=%.2f%% SE=%.2f%% F=%.4f  (TP=%d FP=%d FN=%d TN=%d)\n",
			*comparePath, 100*ppv, 100*se, f, oc.TP, oc.FP, oc.FN, oc.TN)
	}
}

// readTruth parses genseq's TSV and returns per-id labels of the chosen
// column plus the id-space size.
func readTruth(path, column string) ([]int32, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close() //gpclint:ignore unchecked-error read-only file, Close reports nothing actionable
	col := 2
	switch column {
	case "family":
		col = 1
	case "superfamily":
		col = 2
	default:
		return nil, 0, fmt.Errorf("quality: unknown truth column %q", column)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var labels []int32
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if line == 1 && len(fields) > 0 && fields[0] == "id" {
			continue // header
		}
		if len(fields) <= col {
			return nil, 0, fmt.Errorf("quality: %s line %d: want ≥ %d columns", path, line, col+1)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, 0, fmt.Errorf("quality: %s line %d: bad id %q", path, line, fields[0])
		}
		v, err := strconv.ParseInt(fields[col], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("quality: %s line %d: bad label %q", path, line, fields[col])
		}
		for len(labels) <= id {
			labels = append(labels, -1)
		}
		labels[id] = int32(v)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return labels, len(labels), nil
}

// readClusters parses gpclust's output: one cluster per line.
func readClusters(path string, n int) ([][]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //gpclint:ignore unchecked-error read-only file, Close reports nothing actionable
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<22), 1<<22)
	var clusters [][]uint32
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cl := make([]uint32, 0, len(fields))
		for _, fstr := range fields {
			v, err := strconv.ParseUint(fstr, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("quality: %s line %d: bad vertex id %q", path, line, fstr)
			}
			if int(v) >= n {
				return nil, fmt.Errorf("quality: %s line %d: vertex %d outside truth's %d ids", path, line, v, n)
			}
			cl = append(cl, uint32(v))
		}
		clusters = append(clusters, cl)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return clusters, nil
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //gpclint:ignore unchecked-error read-only file, Close reports nothing actionable
	br := bufio.NewReaderSize(f, 1<<20)
	magic, err := br.Peek(4)
	if err == nil && string(magic) == "GPC1" {
		return graph.ReadBinary(br)
	}
	return graph.ReadEdgeList(br)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "quality:", err)
		os.Exit(1)
	}
}
