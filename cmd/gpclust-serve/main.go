// Command gpclust-serve keeps a clustered protein corpus resident and serves
// concurrent family queries and incremental inserts over HTTP. It clusters
// the -in corpus once at startup, then answers:
//
//	POST /assign   one FASTA record  → the resident family it belongs to
//	POST /cluster  FASTA records     → incremental insert (no re-cluster)
//	GET  /dump?member=N              → every member of N's family
//	GET  /metrics                    → OpenMetrics (latency histograms,
//	                                   queue depth, pass/merge counters)
//	GET  /healthz                    → liveness
//
// Admission is bounded: when the request queue is full the server answers
// 503 with a Retry-After hint instead of queueing without bound. Queued
// requests are coalesced into single device scoring passes, so concurrent
// clients share GPU batches. Incremental inserts commit exactly the
// partition a from-scratch re-cluster of the union corpus would produce
// (the LSH filter is per-sequence, so candidate discovery is insertion-
// order independent).
//
// Usage:
//
//	gpclust-serve -in orfs.fa
//	gpclust-serve -in orfs.fa -addr :8844 -gpu -queue 512
//	gpclust-serve -in orfs.fa -bands conservative
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"

	"gpclust/internal/pgraph"
	"gpclust/internal/seq"
	"gpclust/internal/serve"
)

func main() {
	var (
		in       = flag.String("in", "", "input FASTA corpus clustered at startup (required)")
		addr     = flag.String("addr", "localhost:8844", "HTTP listen address")
		queue    = flag.Int("queue", 0, "admission queue capacity (0 = library default; full queue answers 503)")
		coalesce = flag.Int("coalesce", 0, "max requests merged into one device pass (0 = library default)")
		gpu      = flag.Bool("gpu", false, "verify candidate pairs on the simulated GPU (batched Smith-Waterman)")
		minMatch = flag.Int("minmatch", 12, "shingle length for LSH candidate discovery")
		score    = flag.Float64("score", 1.2, "Smith-Waterman score threshold per residue of the shorter sequence")
		bands    = flag.String("bands", "", "LSH band count, or \"conservative\" to bucket on raw shingles (default: the tuned shape)")
		rows     = flag.Int("rows", 0, "LSH signature rows per band (default: the tuned shape)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "gpclust-serve: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	lshBands, err := parseBands(*bands)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpclust-serve:", err)
		os.Exit(2)
	}

	f, err := os.Open(*in)
	fatal(err)
	corpus, err := seq.ReadFASTA(f)
	fatal(f.Close())
	fatal(err)

	pcfg := pgraph.DefaultConfig()
	pcfg.Filter = pgraph.FilterLSH
	pcfg.MinExactMatch = *minMatch
	pcfg.MinScorePerResidue = *score
	pcfg.LSHBands = lshBands
	pcfg.LSHRows = *rows
	pcfg.GPU = *gpu
	s, err := serve.New(serve.Config{Pgraph: pcfg, QueueCap: *queue, MaxCoalesce: *coalesce})
	fatal(err)
	defer s.Close()

	res, err := s.Cluster(corpus)
	fatal(err)
	fmt.Fprintf(os.Stderr, "gpclust-serve: %d sequences resident in %d families; serving on http://%s\n",
		len(res.Indices), res.Families, *addr)
	fatal(http.ListenAndServe(*addr, s.Handler()))
}

// parseBands maps the -bands value to Config.LSHBands the same way the
// pgraph CLI does: empty keeps the library default, "conservative" selects
// the raw-shingle bucket preset, a positive integer fixes the band count.
func parseBands(s string) (int, error) {
	switch s {
	case "":
		return 0, nil
	case "conservative":
		return pgraph.ConservativeBands, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("-bands must be \"conservative\" or a positive band count, got %q", s)
	}
	return n, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpclust-serve:", err)
		os.Exit(1)
	}
}
