// Command gpclust clusters a protein-sequence similarity graph into family
// "core sets" with the Shingling heuristic — serially (pClust), across a
// host worker pool (-backend parallel -workers N), or on the simulated GPU
// (gpClust) — and prints the Table I-style timing breakdown from the
// virtual clock plus the real wall-clock phase times.
//
// Input is an edge-list file ("u v" per line, "# vertices N" header) or the
// binary format written by genseq/pgraph (auto-detected). Output is one
// cluster per line: whitespace-separated vertex ids, largest cluster first.
//
// Usage:
//
//	gpclust -in graph.txt -backend gpu -pipeline -out clusters.txt
//	gpclust -in graph.bin -backend parallel -workers 8
//	gpclust -in graph.bin -backend serial -c1 200 -c2 100
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"gpclust/internal/core"
	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/obs"
)

func main() {
	var (
		in       = flag.String("in", "", "input graph file (edge list or gpclust binary; required)")
		out      = flag.String("out", "", "output cluster file (default stdout)")
		backend  = flag.String("backend", "gpu", "clustering backend: gpu|serial|parallel")
		s1       = flag.Int("s1", 2, "first-level shingle size")
		c1       = flag.Int("c1", 200, "first-level shingle count")
		s2       = flag.Int("s2", 2, "second-level shingle size")
		c2       = flag.Int("c2", 100, "second-level shingle count")
		seed     = flag.Int64("seed", 1, "random seed for the hash families")
		overlap  = flag.Bool("overlap", false, "report overlapping connected-component clusters instead of the union-find partition")
		async    = flag.Bool("async", false, "use asynchronous CPU-GPU transfers (gpu backend)")
		pipeline = flag.Bool("pipeline", false, "double-buffer batches across streams with coalesced transfers (gpu backend)")
		gpuagg   = flag.Bool("gpuagg", false, "aggregate shingles on the device (gpu backend)")
		ngpu     = flag.Int("ngpu", 1, "number of simulated devices (gpu backend)")
		profile  = flag.Bool("profile", false, "print a per-kernel profile of the run (gpu backend)")
		trace    = flag.String("trace", "", "write a merged chrome://tracing timeline (host phases + every device) to this file (gpu backend)")
		metrics  = flag.String("metrics", "", "write OpenMetrics counters for the run to this file (any backend)")
		batch    = flag.String("batch", "auto", "device batch budget in 32-bit words; \"auto\" lets the cost model pick budget and lanes, 0 derives from device memory")
		packed   = flag.Bool("packed", true, "stage adjacency batches as bit-packed device images (gpu backend)")
		fuse     = flag.Bool("fuse", true, "with -packed: let fused kernels read the packed image in place where the cost model says it wins (gpu backend)")
		workers  = flag.Int("workers", 0, "parallel backend: worker-pool size (0 = GOMAXPROCS); serial backend: cluster connected components in parallel with this many workers (0 = whole-graph run)")
		minOut   = flag.Int("minsize", 1, "only print clusters with at least this many members")
		faultSch = flag.String("faults", "", "inject device faults from this schedule, e.g. 'h2d op=3; malloc at=2ms count=2' (gpu backend)")
		retries  = flag.Int("retries", 0, "per-batch fault retry budget (0 = library default; must be >= 0; gpu backend)")
		noFB     = flag.Bool("nofallback", false, "fail instead of degrading to host execution when the fault retry budget is exhausted (gpu backend)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "gpclust: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if *retries < 0 {
		// Negative FaultRetries is the library's explicit disable-retries
		// sentinel; from the command line it is almost always a typo, so
		// reject it rather than silently turning recovery off.
		fmt.Fprintf(os.Stderr, "gpclust: -retries must be >= 0 (got %d; 0 means the default budget)\n", *retries)
		os.Exit(2)
	}
	if *backend != "gpu" {
		for _, f := range []struct {
			set  bool
			name string
		}{
			{*async, "-async"}, {*pipeline, "-pipeline"}, {*gpuagg, "-gpuagg"},
			{*ngpu != 1, "-ngpu"}, {*profile, "-profile"}, {*trace != "", "-trace"},
			{*faultSch != "", "-faults"}, {*retries != 0, "-retries"}, {*noFB, "-nofallback"},
			{!*packed, "-packed=false"}, {!*fuse, "-fuse=false"},
		} {
			if f.set {
				fmt.Fprintf(os.Stderr, "gpclust: %s requires -backend gpu\n", f.name)
				os.Exit(2)
			}
		}
	}
	var inj *faults.Injector
	if *faultSch != "" {
		sched, err := faults.Parse(*faultSch)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpclust:", err)
			os.Exit(2)
		}
		inj = faults.NewInjector(sched)
	}

	g, err := loadGraph(*in)
	fatal(err)
	st := graph.ComputeStats(g)
	fmt.Fprintf(os.Stderr, "gpclust: loaded %s\n", st)

	batchWords, autoTune, err := parseBatchWords(*batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpclust:", err)
		os.Exit(2)
	}
	o := core.Options{
		S1: *s1, C1: *c1, S2: *s2, C2: *c2,
		Seed:            *seed,
		Mode:            core.ReportUnionFind,
		AsyncTransfer:   *async,
		PipelineBatches: *pipeline,
		GPUAggregate:    *gpuagg,
		BatchWords:      batchWords,
		AutoTune:        autoTune,
		Packed:          *packed,
		Fuse:            *fuse,
		FaultRetries:    *retries,
		NoHostFallback:  *noFB,
	}
	if *overlap {
		o.Mode = core.ReportOverlapping
	}
	var rec *obs.Recorder
	if *trace != "" || *metrics != "" {
		rec = obs.New()
		o.Obs = rec
		if inj != nil {
			inj.SetRecorder(rec)
		}
	}

	var res *core.Result
	switch *backend {
	case "serial":
		if *workers > 0 {
			res, err = core.ClusterByComponent(g, o, *workers)
		} else {
			res, err = core.ClusterSerial(g, o)
		}
	case "parallel":
		o.Workers = *workers
		res, err = core.ClusterParallel(g, o)
		if err == nil {
			fmt.Fprintf(os.Stderr, "gpclust: parallel backend used %d workers\n", res.Workers)
		}
	case "gpu":
		devs := make([]*gpusim.Device, *ngpu)
		for i := range devs {
			devs[i] = gpusim.MustNew(gpusim.K20Config())
			if inj != nil {
				devs[i].SetFaultInjector(inj)
			}
			if *profile {
				devs[i].EnableProfiling()
			}
			if *trace != "" {
				devs[i].EnableTracing()
			}
		}
		if *ngpu > 1 {
			res, err = core.ClusterMultiGPU(g, devs, o)
		} else {
			res, err = core.ClusterGPU(g, devs[0], o)
		}
		if err == nil && *profile {
			for i, d := range devs {
				fmt.Fprintf(os.Stderr, "gpclust: device %d kernel profile:\n", i)
				d.WriteProfile(os.Stderr)
			}
		}
		if err == nil && *trace != "" {
			tl := make([]obs.DeviceTimeline, len(devs))
			for i, d := range devs {
				tl[i] = obs.DeviceTimeline{Name: fmt.Sprintf("device%d", i), Events: d.Trace()}
			}
			tf, terr := os.Create(*trace)
			fatal(terr)
			fatal(obs.WriteMergedTrace(tf, rec, tl))
			fatal(tf.Close())
			fmt.Fprintf(os.Stderr, "gpclust: merged timeline written to %s (open in chrome://tracing or Perfetto)\n", *trace)
		}
	default:
		fmt.Fprintf(os.Stderr, "gpclust: unknown backend %q\n", *backend)
		os.Exit(2)
	}
	fatal(err)

	if *metrics != "" {
		mf, merr := os.Create(*metrics)
		fatal(merr)
		fatal(rec.WriteOpenMetrics(mf))
		fatal(mf.Close())
		fmt.Fprintf(os.Stderr, "gpclust: metrics written to %s\n", *metrics)
	}

	if inj != nil {
		fmt.Fprintf(os.Stderr, "gpclust: injected faults: %s; recovery: %s\n", inj, &res.Faults)
	} else if res.Faults.Any() {
		fmt.Fprintf(os.Stderr, "gpclust: fault recovery: %s\n", &res.Faults)
	}
	fmt.Fprintf(os.Stderr, "gpclust: %d clusters; timings (virtual clock): %s\n",
		res.NumClusters(), res.Timings.String())
	fmt.Fprintf(os.Stderr, "gpclust: wall clock: %s\n", res.Wall.String())
	fmt.Fprintf(os.Stderr, "gpclust: pass1 %d lists / %d shingles, pass2 %d lists / %d shingles, %d batches\n",
		res.Pass1.Lists, res.Pass1.Shingles, res.Pass2.Lists, res.Pass2.Shingles, res.Pass1.Batches)
	if res.Pass1.Plan.Batches > 0 {
		fmt.Fprintf(os.Stderr, "gpclust: pass1 %s\n", res.Pass1.Plan)
	}
	if res.Pass2.Plan.Batches > 0 {
		fmt.Fprintf(os.Stderr, "gpclust: pass2 %s\n", res.Pass2.Plan)
	}

	w := io.Writer(os.Stdout)
	closeOut := func() error { return nil }
	if *out != "" {
		f, err := os.Create(*out)
		fatal(err)
		// Closed explicitly after the flush: on the write path a Close
		// failure means lost output and must reach the user.
		closeOut = f.Close
		w = f
	}
	bw := bufio.NewWriter(w)
	for _, cl := range res.Clustering.Clusters {
		if len(cl) < *minOut {
			continue
		}
		for i, v := range cl {
			if i > 0 {
				fmt.Fprint(bw, " ")
			}
			fmt.Fprint(bw, v)
		}
		fmt.Fprintln(bw)
	}
	fatal(bw.Flush())
	fatal(closeOut())
}

// loadGraph auto-detects the binary magic, falling back to the text
// edge-list parser.
func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //gpclint:ignore unchecked-error read-only file, Close reports nothing actionable
	br := bufio.NewReaderSize(f, 1<<20)
	magic, err := br.Peek(4)
	if err == nil && string(magic) == "GPC1" {
		return graph.ReadBinary(br)
	}
	return graph.ReadEdgeList(br)
}

// parseBatchWords maps the -batch value to (budget, autoTune): "auto" lets
// the cost-model auto-tuner pick budget and lane count, "0" keeps the
// legacy free-memory derivation, and a positive integer fixes the
// per-batch budget.
func parseBatchWords(s string) (int, bool, error) {
	if s == "auto" {
		return 0, true, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, false, fmt.Errorf("-batch must be \"auto\" or a non-negative word count, got %q", s)
	}
	return n, false, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpclust:", err)
		os.Exit(1)
	}
}
