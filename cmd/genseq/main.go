// Command genseq generates synthetic inputs: either a metagenomic ORF data
// set (FASTA + ground-truth family table) standing in for the paper's GOS
// sequences, or a planted-dense-subgraph similarity graph directly.
//
// Usage:
//
//	genseq -mode seqs  -n 2000  -fasta orfs.fa -truth truth.tsv
//	genseq -mode graph -n 20000 -graph graph.txt -truth truth.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"gpclust/internal/graph"
	"gpclust/internal/seq"
)

func main() {
	var (
		mode      = flag.String("mode", "seqs", "what to generate: seqs|graph")
		n         = flag.Int("n", 2000, "number of sequences / vertices")
		seed      = flag.Int64("seed", 1, "random seed")
		fastaPath = flag.String("fasta", "", "FASTA output path (mode=seqs)")
		graphPath = flag.String("graph", "", "graph output path (mode=graph; .bin suffix selects binary)")
		truthPath = flag.String("truth", "", "ground-truth TSV output path (id, family, superfamily)")
	)
	flag.Parse()

	switch *mode {
	case "seqs":
		cfg := seq.DefaultMetagenomeConfig(*n)
		cfg.Seed = *seed
		m, err := seq.GenerateMetagenome(cfg)
		fatal(err)
		if *fastaPath == "" {
			fatal(seq.WriteFASTA(os.Stdout, m.Seqs))
		} else {
			f, err := os.Create(*fastaPath)
			fatal(err)
			fatal(seq.WriteFASTA(f, m.Seqs))
			fatal(f.Close())
		}
		if *truthPath != "" {
			fatal(writeTruth(*truthPath, m.Family, m.SuperFamily))
		}
		fmt.Fprintf(os.Stderr, "genseq: %d sequences, %d families, %d super-families\n",
			len(m.Seqs), m.NumFamilies, m.NumSupers)
	case "graph":
		cfg := graph.DefaultPlantedConfig(*n)
		cfg.Seed = *seed
		g, gt := graph.Planted(cfg)
		if *graphPath == "" {
			fatal(graph.WriteEdgeList(os.Stdout, g))
		} else {
			f, err := os.Create(*graphPath)
			fatal(err)
			if len(*graphPath) > 4 && (*graphPath)[len(*graphPath)-4:] == ".bin" {
				fatal(graph.WriteBinary(f, g))
			} else {
				fatal(graph.WriteEdgeList(f, g))
			}
			fatal(f.Close())
		}
		if *truthPath != "" {
			fatal(writeTruth(*truthPath, gt.Family, gt.SuperFamily))
		}
		st := graph.ComputeStats(g)
		fmt.Fprintf(os.Stderr, "genseq: %s\n", st)
	default:
		fmt.Fprintf(os.Stderr, "genseq: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func writeTruth(path string, family, super []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	fmt.Fprintln(bw, "id\tfamily\tsuperfamily")
	for i := range family {
		fmt.Fprintf(bw, "%d\t%d\t%d\n", i, family[i], super[i])
	}
	if err := bw.Flush(); err != nil {
		f.Close() //gpclint:ignore unchecked-error already failing with the flush error
		return err
	}
	// Close errors matter on the write path: buffered data can still fail
	// to reach disk here.
	return f.Close()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "genseq:", err)
		os.Exit(1)
	}
}
