// Command gpclint runs gpClust's project-specific static analyzers over
// the module: determinism discipline (no ordered output from map ranges in
// clustering packages, no global math/rand), virtual-clock discipline (no
// stray wall-clock reads), concurrency discipline (no mixed atomic/plain
// field access), device-memory discipline (every Malloc freed on every
// return path), and no silently discarded errors.
//
// Usage:
//
//	gpclint [-tags taglist] [-rules list] packages...
//
// Package patterns are directories relative to the module root; "./..."
// expands recursively the way the go tool does (skipping testdata), while
// naming a testdata directory explicitly lints it — which is how the
// fixture packages under internal/lint/testdata are exercised.
//
// Exit status: 0 when clean, 1 when any finding is reported, 2 on usage or
// load errors. Findings are suppressed line-by-line with
// `//gpclint:ignore <rule> <reason>`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpclust/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	tags := flag.String("tags", "", "comma-separated build tags")
	rules := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gpclint [-tags taglist] [-rules list] packages...\nrules:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		return 2
	}

	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	analyzers := lint.Analyzers()
	if *rules != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*rules, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "gpclint: unknown rule %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpclint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd, tagList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpclint:", err)
		return 2
	}
	dirs, err := loader.ExpandPatterns(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpclint:", err)
		return 2
	}

	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpclint:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	diags := lint.Run(lint.DefaultConfig(), pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gpclint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
