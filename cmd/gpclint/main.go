// Command gpclint runs gpClust's project-specific static analyzers over
// the module: determinism discipline (no ordered output from map ranges in
// clustering packages, no global math/rand, no shared writes from
// goroutines, no order-sensitive selects), virtual-clock discipline (no
// stray wall-clock reads, no wall-clock values flowing into virtual
// timestamps or cost-model parameters), concurrency discipline (no mixed
// atomic/plain field access), device-memory discipline (every Malloc freed
// on every return path, path-sensitively), no silently discarded errors,
// and a config-drift meta-audit of the gate's own configuration.
//
// Usage:
//
//	gpclint [-tags taglist] [-rules list] [-tests] [-json] packages...
//
// Package patterns are directories relative to the module root; "./..."
// expands recursively the way the go tool does (skipping testdata), while
// naming a testdata directory explicitly lints it — which is how the
// fixture packages under internal/lint/testdata are exercised; those runs
// automatically use the fixture configuration the self-tests assert.
//
// -tests adds each requested package's in-package _test.go files to the
// analysis, the CI mode for determinism-critical packages. -json switches
// the output to machine-readable JSON Lines: one
//
//	{"type":"finding","rule":...,"file":...,"line":...,"col":...,"message":...}
//
// object per finding, then one {"type":"summary","findings":N,"packages":M}
// record, so CI can archive the artifact and diff runs against a baseline.
//
// Exit status: 0 when clean, 1 when any finding is reported, 2 on usage or
// load errors. Findings are suppressed line-by-line with
// `//gpclint:ignore <rule> <reason>`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gpclust/internal/lint"
)

func main() {
	os.Exit(run())
}

// jsonFinding is the machine-readable form of one diagnostic.
type jsonFinding struct {
	Type    string `json:"type"` // "finding"
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// jsonSummary terminates a -json stream; its presence is how a consumer
// distinguishes "no findings" from "run never finished".
type jsonSummary struct {
	Type     string `json:"type"` // "summary"
	Findings int    `json:"findings"`
	Packages int    `json:"packages"`
}

func run() int {
	tags := flag.String("tags", "", "comma-separated build tags")
	rules := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	tests := flag.Bool("tests", false, "include in-package _test.go files of the named packages")
	asJSON := flag.Bool("json", false, "emit findings as JSON Lines plus a summary record")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gpclint [-tags taglist] [-rules list] [-tests] [-json] packages...\nrules:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-20s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		return 2
	}

	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	analyzers := lint.Analyzers()
	if *rules != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*rules, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "gpclint: unknown rule %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpclint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd, tagList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpclint:", err)
		return 2
	}
	loader.IncludeTests = *tests
	dirs, err := loader.ExpandPatterns(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpclint:", err)
		return 2
	}

	// Fixture runs get the fixture configuration: a testdata directory can
	// only be linted by naming it explicitly, and the classifications its
	// findings assert live in FixtureConfig, not in the production config.
	cfg := lint.DefaultConfig()
	for _, dir := range dirs {
		if strings.Contains(filepath.ToSlash(dir), "/lint/testdata/") {
			cfg = lint.FixtureConfig()
			break
		}
	}

	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpclint:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	diags := lint.Run(cfg, pkgs, analyzers)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			rec := jsonFinding{Type: "finding", Rule: d.Rule, File: d.Pos.Filename,
				Line: d.Pos.Line, Col: d.Pos.Column, Message: d.Message}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, "gpclint:", err)
				return 2
			}
		}
		if err := enc.Encode(jsonSummary{Type: "summary", Findings: len(diags), Packages: len(pkgs)}); err != nil {
			fmt.Fprintln(os.Stderr, "gpclint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "gpclint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
