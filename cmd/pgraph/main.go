// Command pgraph builds a protein-sequence similarity graph from FASTA
// input, the way the paper's pGraph substrate does: candidate pairs from
// exact maximal matches (generalized suffix structure), verified with
// Smith–Waterman over BLOSUM62, emitted as the edge list gpclust consumes.
//
// Usage:
//
//	pgraph -in orfs.fa -out graph.txt
//	pgraph -in orfs.fa -out graph.bin -minmatch 12 -score 1.2
//	pgraph -in orfs.fa -out graph.txt -gpu -pipeline
//	pgraph -in orfs.fa -out graph.txt -gpu -filter cascade -bands conservative
//	pgraph -in orfs.fa -out graph.txt -filter lsh -bands 64 -rows 1
//
// With -gpu the Smith–Waterman verification runs as batched score-only
// kernels on the simulated device (bit-identical edge set to the host
// path), and stderr reports the paper's Table-I-style component split:
// CPU filter, GPU SW, Data_c→g, Data_g→c.
//
// -filter swaps the exact suffix-structure candidate filter for MinHash/LSH
// banding (with -gpu, band hashing and bucket grouping run on the device):
// "lsh" verifies LSH candidates only, "cascade" restricts the exact filter's
// pairs to LSH-connected components — bit-identical to the exact path at
// -bands conservative, recall-traded otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpclust/internal/faults"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
	"gpclust/internal/obs"
	"gpclust/internal/pgraph"
	"gpclust/internal/seq"
)

func main() {
	var (
		in       = flag.String("in", "", "input FASTA file (required)")
		out      = flag.String("out", "", "output graph path (default stdout; .bin suffix selects binary)")
		minMatch = flag.Int("minmatch", 12, "exact-match seed length for candidate pairs")
		score    = flag.Float64("score", 1.2, "Smith-Waterman score threshold per residue of the shorter sequence")
		workers  = flag.Int("workers", 0, "alignment workers (0 = GOMAXPROCS)")
		gpu      = flag.Bool("gpu", false, "verify candidate pairs on the simulated GPU (batched Smith-Waterman)")
		pipeline = flag.Bool("pipeline", false, "with -gpu: double-buffer device batches (overlap copies and kernels)")
		batchW   = flag.String("batchwords", "auto", "with -gpu: per-batch device budget in words; \"auto\" lets the cost model pick budget and lanes, 0 derives from device memory")
		packed   = flag.Bool("packed", true, "with -gpu: stage batch residues as a 5-bit packed device image")
		fuse     = flag.Bool("fuse", true, "with -gpu -packed: let the SW kernel decode the packed image in place where the cost model says it wins")
		noBin    = flag.Bool("nobin", false, "with -gpu: disable length binning of pairs (more warp divergence)")
		filter   = flag.String("filter", "exact", "candidate filter: exact (suffix oracle), lsh (MinHash banding), cascade (LSH pass, then exact pairs restricted to LSH components; bit-identical at the conservative preset)")
		bands    = flag.String("bands", "", "with -filter lsh|cascade: band count, or \"conservative\" to bucket on raw shingles (default: the tuned shape)")
		rows     = flag.Int("rows", 0, "with -filter lsh|cascade: signature rows per band (default: the tuned shape)")
		faultSch = flag.String("faults", "", "with -gpu: inject device faults from this schedule, e.g. 'h2d op=3; malloc at=2ms count=2'")
		retries  = flag.Int("retries", 0, "with -gpu: per-batch fault retry budget (0 = library default; must be >= 0)")
		noFB     = flag.Bool("nofallback", false, "with -gpu: fail instead of degrading to host scoring when the fault retry budget is exhausted")
		trace    = flag.String("trace", "", "with -gpu: write a merged chrome://tracing timeline (host phases + device) to this file")
		metrics  = flag.String("metrics", "", "write OpenMetrics counters for the build to this file (any backend)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "pgraph: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if *retries < 0 {
		// Negative FaultRetries is the library's explicit disable-retries
		// sentinel; from the command line it is almost always a typo, so
		// reject it rather than silently turning recovery off.
		fmt.Fprintf(os.Stderr, "pgraph: -retries must be >= 0 (got %d; 0 means the default budget)\n", *retries)
		os.Exit(2)
	}
	if !*gpu {
		for _, f := range []struct {
			set  bool
			name string
		}{
			{*pipeline, "-pipeline"}, {*batchW != "auto", "-batchwords"}, {*noBin, "-nobin"},
			{*faultSch != "", "-faults"}, {*retries != 0, "-retries"}, {*noFB, "-nofallback"},
			{*trace != "", "-trace"}, {!*packed, "-packed=false"}, {!*fuse, "-fuse=false"},
		} {
			if f.set {
				fmt.Fprintf(os.Stderr, "pgraph: %s requires -gpu\n", f.name)
				os.Exit(2)
			}
		}
	}
	if *filter == pgraph.FilterExact {
		// The library enforces the same rule; rejecting here names the flags.
		for _, f := range []struct {
			set  bool
			name string
		}{
			{*bands != "", "-bands"}, {*rows != 0, "-rows"},
		} {
			if f.set {
				fmt.Fprintf(os.Stderr, "pgraph: %s requires -filter lsh or -filter cascade\n", f.name)
				os.Exit(2)
			}
		}
	}
	lshBands, err := parseBands(*bands)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgraph:", err)
		os.Exit(2)
	}
	var inj *faults.Injector
	if *faultSch != "" {
		sched, err := faults.Parse(*faultSch)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pgraph:", err)
			os.Exit(2)
		}
		inj = faults.NewInjector(sched)
	}

	f, err := os.Open(*in)
	fatal(err)
	seqs, err := seq.ReadFASTA(f)
	fatal(f.Close())
	fatal(err)

	cfg := pgraph.DefaultConfig()
	cfg.MinExactMatch = *minMatch
	cfg.MinScorePerResidue = *score
	cfg.Workers = *workers
	cfg.Filter = *filter
	cfg.LSHBands = lshBands
	cfg.LSHRows = *rows
	cfg.GPU = *gpu
	cfg.GPUPipeline = *pipeline
	cfg.GPUBatchWords, cfg.AutoTune, err = parseBatchWords(*batchW)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgraph:", err)
		os.Exit(2)
	}
	cfg.Packed = *packed
	cfg.Fuse = *fuse
	cfg.NoLengthBin = *noBin
	cfg.FaultRetries = *retries
	cfg.NoHostFallback = *noFB
	if inj != nil || (*gpu && *trace != "") {
		cfg.Device = gpusim.MustNew(gpusim.K20Config())
		if inj != nil {
			cfg.Device.SetFaultInjector(inj)
		}
		if *trace != "" {
			cfg.Device.EnableTracing()
		}
	}
	var rec *obs.Recorder
	if *trace != "" || *metrics != "" {
		rec = obs.New()
		cfg.Obs = rec
		if inj != nil {
			inj.SetRecorder(rec)
		}
	}

	g, st, err := pgraph.Build(seqs, cfg)
	fatal(err)
	if *trace != "" {
		tf, terr := os.Create(*trace)
		fatal(terr)
		fatal(obs.WriteMergedTrace(tf, rec,
			[]obs.DeviceTimeline{{Name: "device0", Events: cfg.Device.Trace()}}))
		fatal(tf.Close())
		fmt.Fprintf(os.Stderr, "pgraph: merged timeline written to %s (open in chrome://tracing or Perfetto)\n", *trace)
	}
	if *metrics != "" {
		mf, merr := os.Create(*metrics)
		fatal(merr)
		fatal(rec.WriteOpenMetrics(mf))
		fatal(mf.Close())
		fmt.Fprintf(os.Stderr, "pgraph: metrics written to %s\n", *metrics)
	}
	if inj != nil {
		fmt.Fprintf(os.Stderr, "pgraph: injected faults: %s; recovery: %s\n", inj, &st.Faults)
	} else if st.Faults.Any() {
		fmt.Fprintf(os.Stderr, "pgraph: fault recovery: %s\n", &st.Faults)
	}
	fmt.Fprintf(os.Stderr, "pgraph: %d sequences, %d candidate pairs (%s filter), %d edges (%s backend)\n",
		st.Sequences, st.Candidates, st.Filter, st.Edges, st.Backend)
	if st.Backend == "gpu" {
		fmt.Fprintf(os.Stderr,
			"pgraph: CPU filter %.3fs | GPU SW %.3fs | Data_c→g %.3fs | Data_g→c %.3fs | total %.3fs virtual (%d batches, divergence %.1f%%), wall %dms\n",
			st.FilterNs/1e9, st.AlignNs/1e9, st.H2DNs/1e9, st.D2HNs/1e9, st.TotalNs/1e9,
			st.GPUBatches, 100*st.Divergence, st.WallNs/1e6)
		if st.LSHPlan.Batches > 0 {
			fmt.Fprintf(os.Stderr, "pgraph: lsh %s\n", st.LSHPlan)
		}
		if st.Plan.Batches > 0 {
			fmt.Fprintf(os.Stderr, "pgraph: %s\n", st.Plan)
		}
	} else {
		fmt.Fprintf(os.Stderr,
			"pgraph: CPU filter %.3fs | SW %.3fs (%d workers) | total %.3fs virtual, wall %dms\n",
			st.FilterNs/1e9, st.AlignNs/1e9, st.Workers, st.TotalNs/1e9, st.WallNs/1e6)
	}

	if *out == "" {
		fatal(graph.WriteEdgeList(os.Stdout, g))
		return
	}
	of, err := os.Create(*out)
	fatal(err)
	if strings.HasSuffix(*out, ".bin") {
		fatal(graph.WriteBinary(of, g))
	} else {
		fatal(graph.WriteEdgeList(of, g))
	}
	fatal(of.Close())
}

// parseBands maps the -bands value to Config.LSHBands: empty keeps the
// library default, "conservative" selects the raw-shingle bucket preset, and
// a positive integer fixes the band count.
func parseBands(s string) (int, error) {
	switch s {
	case "":
		return 0, nil
	case "conservative":
		return pgraph.ConservativeBands, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("-bands must be \"conservative\" or a positive band count, got %q", s)
	}
	return n, nil
}

// parseBatchWords maps the -batchwords value to (budget, autoTune):
// "auto" lets the cost-model auto-tuner pick budget and lane count, "0"
// keeps the legacy free-memory derivation, and a positive integer fixes
// the per-batch budget.
func parseBatchWords(s string) (int, bool, error) {
	if s == "auto" {
		return 0, true, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, false, fmt.Errorf("-batchwords must be \"auto\" or a non-negative word count, got %q", s)
	}
	return n, false, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgraph:", err)
		os.Exit(1)
	}
}
