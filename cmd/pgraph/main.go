// Command pgraph builds a protein-sequence similarity graph from FASTA
// input, the way the paper's pGraph substrate does: candidate pairs from
// exact maximal matches (generalized suffix structure), verified with
// Smith–Waterman over BLOSUM62, emitted as the edge list gpclust consumes.
//
// Usage:
//
//	pgraph -in orfs.fa -out graph.txt
//	pgraph -in orfs.fa -out graph.bin -minmatch 12 -score 1.2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpclust/internal/graph"
	"gpclust/internal/pgraph"
	"gpclust/internal/seq"
)

func main() {
	var (
		in       = flag.String("in", "", "input FASTA file (required)")
		out      = flag.String("out", "", "output graph path (default stdout; .bin suffix selects binary)")
		minMatch = flag.Int("minmatch", 12, "exact-match seed length for candidate pairs")
		score    = flag.Float64("score", 1.2, "Smith-Waterman score threshold per residue of the shorter sequence")
		workers  = flag.Int("workers", 0, "alignment workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "pgraph: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	fatal(err)
	seqs, err := seq.ReadFASTA(f)
	fatal(f.Close())
	fatal(err)

	cfg := pgraph.DefaultConfig()
	cfg.MinExactMatch = *minMatch
	cfg.MinScorePerResidue = *score
	cfg.Workers = *workers

	g, st, err := pgraph.Build(seqs, cfg)
	fatal(err)
	fmt.Fprintf(os.Stderr, "pgraph: %d sequences, %d candidate pairs, %d edges\n",
		st.Sequences, st.Candidates, st.Edges)

	if *out == "" {
		fatal(graph.WriteEdgeList(os.Stdout, g))
		return
	}
	of, err := os.Create(*out)
	fatal(err)
	if strings.HasSuffix(*out, ".bin") {
		fatal(graph.WriteBinary(of, g))
	} else {
		fatal(graph.WriteEdgeList(of, g))
	}
	fatal(of.Close())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgraph:", err)
		os.Exit(1)
	}
}
