// Command experiments regenerates every table and figure of the paper's
// evaluation section (Tables I–IV, Figure 5, the large-scale demonstration)
// plus the ablation studies listed in DESIGN.md.
//
// Scales are fractions of the paper's input sizes (1.0 = the paper's 20K/2M/
// 11M-vertex graphs); defaults keep the full suite to a few minutes of wall
// time on one core. All timing numbers come from the simulator's virtual
// clock and are therefore machine-independent.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp table1 -scale20k 1.0 -scale2m 0.05
//	experiments -exp quality -scalequality 0.01
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gpclust/internal/bench"
	"gpclust/internal/core"
	"gpclust/internal/gos"
	"gpclust/internal/obs"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment: table1|table2|table3|table4|fig5|quality|qualityscaling|largescale|memory|theory|pgraph|autotune|packing|lsh|faults|serve|ablations|all")
		scale20k     = flag.Float64("scale20k", 1.0, "scale of the paper's 20K graph for Table I")
		scale2m      = flag.Float64("scale2m", 0.02, "scale of the paper's 2M graph for Tables I–II")
		scaleQuality = flag.Float64("scalequality", 0.005, "scale of the 2M graph for Tables III–IV / Figure 5")
		scaleLarge   = flag.Float64("scalelarge", 0.002, "scale of the 11M-vertex Pacific Ocean graph")
		c1           = flag.Int("c1", 200, "first-level shingle count (paper: 200)")
		c2           = flag.Int("c2", 100, "second-level shingle count (paper: 100)")
		gosK         = flag.Int("gosk", 10, "GOS baseline shared-neighbor threshold (paper: 10)")
		minSize      = flag.Int("minsize", 20, "cluster-size cutoff for the quality study (paper: 20)")
		seed         = flag.Int64("seed", 1, "random seed")
		pgraphN      = flag.Int("pgraphn", 0, "ORF count for the pgraph backend ablation (0: default)")
		pgraphBatch  = flag.Int("pgraphbatch", 0, "per-batch word budget for the pgraph ablation (0: default)")
		benchJSON    = flag.String("benchjson", "", "with -exp pgraph/autotune/packing/lsh: also write the machine-readable points as JSON to this file")
		retryBack    = flag.Float64("retrybackoff", 0, "base fault-retry backoff in virtual ns (0 = library default)")
		traceOut     = flag.String("trace", "", "with -exp table1: write the 20K GPU run's merged chrome://tracing timeline to this file")
		metricsOut   = flag.String("metrics", "", "write OpenMetrics counters accumulated across the runs to this file")
	)
	flag.Parse()
	if *retryBack < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -retrybackoff must be >= 0 (got %g)\n", *retryBack)
		os.Exit(2)
	}
	if *traceOut != "" && *exp != "table1" {
		fmt.Fprintln(os.Stderr, "experiments: -trace requires -exp table1")
		os.Exit(2)
	}

	perfOpts := core.DefaultOptions()
	perfOpts.C1, perfOpts.C2 = *c1, *c2
	perfOpts.Seed = *seed
	perfOpts.RetryBackoffNs = *retryBack
	var rec *obs.Recorder
	if *metricsOut != "" {
		rec = obs.New()
		perfOpts.Obs = rec
	}

	qualOpts := bench.QualityOptions()
	qualOpts.Seed = *seed

	gosOpt := gos.DefaultOptions()
	gosOpt.K = *gosK

	out := os.Stdout
	runQuality := func() *bench.QualityResult {
		q, err := bench.RunQuality(*scaleQuality, qualOpts, gosOpt, *minSize)
		fatal(err)
		return q
	}

	switch *exp {
	case "table1":
		rows, err := bench.RunTable1(*scale20k, *scale2m, perfOpts)
		fatal(err)
		bench.RenderTable1(out, rows)
		if *traceOut != "" {
			tf, terr := os.Create(*traceOut)
			fatal(terr)
			fatal(obs.WriteMergedTrace(tf, rows[0].Obs, []obs.DeviceTimeline{rows[0].Timeline}))
			fatal(tf.Close())
			fmt.Fprintf(os.Stderr, "experiments: merged timeline written to %s\n", *traceOut)
		}
	case "table2":
		bench.RenderTable2(out, bench.RunTable2(*scale2m), *scale2m)
	case "table3":
		bench.RenderTable3(out, runQuality())
	case "table4":
		bench.RenderTable4(out, runQuality())
	case "fig5":
		bench.RenderFig5(out, runQuality())
	case "quality":
		q := runQuality()
		bench.RenderTable3(out, q)
		fmt.Fprintln(out)
		bench.RenderTable4(out, q)
		fmt.Fprintln(out)
		bench.RenderFig5(out, q)
	case "largescale":
		r, err := bench.RunLargeScale(*scaleLarge, perfOpts)
		fatal(err)
		bench.RenderLargeScale(out, r)
	case "qualityscaling":
		rows, err := bench.RunQualityScaling([]float64{0.003, 0.005, 0.01}, qualOpts, gosOpt, *minSize)
		fatal(err)
		bench.RenderQualityScaling(out, rows)
	case "theory":
		for _, s := range []int{1, 2, 3} {
			bench.RenderMinwiseTheory(out, s, bench.RunMinwiseTheory(s, 200, 20000, *seed))
			fmt.Fprintln(out)
		}
	case "memory":
		rows, err := bench.RunMemoryScaling([]float64{0.002, 0.005, 0.01, 0.02}, perfOpts)
		fatal(err)
		bench.RenderMemoryScaling(out, rows)
	case "pgraph":
		rows, points, err := bench.AblatePGraphBackend(*pgraphN, *pgraphBatch)
		fatal(err)
		bench.RenderAblation(out, "pGraph Smith-Waterman verification backends (Table I trajectory)", rows)
		if *benchJSON != "" {
			blob, err := json.MarshalIndent(points, "", "  ")
			fatal(err)
			fatal(os.WriteFile(*benchJSON, append(blob, '\n'), 0o644))
		}
	case "autotune":
		smallPerf := perfOpts
		smallPerf.C1, smallPerf.C2 = 100, 50
		rows, points, err := bench.AblateAutoTune(0.25, smallPerf, *pgraphN)
		fatal(err)
		bench.RenderAblation(out, "auto-tuned vs fixed batch plans (cost-model argmin)", rows)
		if *benchJSON != "" {
			blob, err := json.MarshalIndent(points, "", "  ")
			fatal(err)
			fatal(os.WriteFile(*benchJSON, append(blob, '\n'), 0o644))
		}
	case "packing":
		smallPerf := perfOpts
		smallPerf.C1, smallPerf.C2 = 100, 50
		rows, points, err := bench.AblatePacking(0.25, smallPerf, *pgraphN)
		fatal(err)
		bench.RenderAblation(out, "packed device images and kernel fusion (H2D volume vs launch count)", rows)
		if *benchJSON != "" {
			blob, err := json.MarshalIndent(points, "", "  ")
			fatal(err)
			fatal(os.WriteFile(*benchJSON, append(blob, '\n'), 0o644))
		}
	case "lsh":
		rows, points, err := bench.AblateLSH(*pgraphN)
		fatal(err)
		bench.RenderAblation(out, "LSH banding candidate filter (recall vs candidate volume)", rows)
		if *benchJSON != "" {
			blob, err := json.MarshalIndent(points, "", "  ")
			fatal(err)
			fatal(os.WriteFile(*benchJSON, append(blob, '\n'), 0o644))
		}
	case "faults":
		rows, err := bench.AblateFaults(*scale20k, perfOpts)
		fatal(err)
		bench.RenderAblation(out, "fault injection and recovery (identical clustering under device faults)", rows)
	case "serve":
		rows, point, err := bench.AblateServe(*pgraphN)
		fatal(err)
		bench.RenderAblation(out, "resident incremental serving (gpclust-serve vs from-scratch re-cluster)", rows)
		if *benchJSON != "" {
			blob, err := json.MarshalIndent(point, "", "  ")
			fatal(err)
			fatal(os.WriteFile(*benchJSON, append(blob, '\n'), 0o644))
		}
	case "ablations":
		runAblations(out, *scaleQuality, perfOpts, *minSize)
	case "all":
		fmt.Fprintln(out, "== Table II ==")
		bench.RenderTable2(out, bench.RunTable2(*scale2m), *scale2m)
		fmt.Fprintln(out, "\n== Table I ==")
		rows, err := bench.RunTable1(*scale20k, *scale2m, perfOpts)
		fatal(err)
		bench.RenderTable1(out, rows)
		fmt.Fprintln(out, "\n== Tables III & IV, Figure 5 ==")
		q := runQuality()
		bench.RenderTable3(out, q)
		fmt.Fprintln(out)
		bench.RenderTable4(out, q)
		fmt.Fprintln(out)
		bench.RenderFig5(out, q)
		fmt.Fprintln(out, "\n== Large-scale demonstration ==")
		r, err := bench.RunLargeScale(*scaleLarge, perfOpts)
		fatal(err)
		bench.RenderLargeScale(out, r)
		fmt.Fprintln(out, "\n== Quality stability across scales ==")
		qrows, err := bench.RunQualityScaling([]float64{0.003, 0.005, 0.01}, qualOpts, gosOpt, *minSize)
		fatal(err)
		bench.RenderQualityScaling(out, qrows)
		fmt.Fprintln(out, "\n== Peak memory (Section III-B complexity claim) ==")
		mrows, err := bench.RunMemoryScaling([]float64{0.002, 0.005, 0.01}, perfOpts)
		fatal(err)
		bench.RenderMemoryScaling(out, mrows)
		fmt.Fprintln(out, "\n== Min-wise theory validation ==")
		bench.RenderMinwiseTheory(out, 2, bench.RunMinwiseTheory(2, 200, 20000, *seed))
		fmt.Fprintln(out, "\n== Ablations ==")
		runAblations(out, *scaleQuality, perfOpts, *minSize)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}

	if *metricsOut != "" {
		mf, err := os.Create(*metricsOut)
		fatal(err)
		fatal(rec.WriteOpenMetrics(mf))
		fatal(mf.Close())
		fmt.Fprintf(os.Stderr, "experiments: metrics written to %s\n", *metricsOut)
	}
}

func runAblations(out *os.File, qualityScale float64, perfOpts core.Options, minSize int) {
	smallPerf := perfOpts
	smallPerf.C1, smallPerf.C2 = 100, 50

	rows, err := bench.AblateAsync(0.005, smallPerf)
	fatal(err)
	bench.RenderAblation(out, "synchronous vs asynchronous CPU-GPU transfer (paper Section V)", rows)

	rows, err = bench.AblateBatchSize(0.25, smallPerf, []int{0, 2_000_000, 200_000, 40_000})
	fatal(err)
	bench.RenderAblation(out, "device batch budget (Algorithm 2 partitioning)", rows)

	rows, _, err = bench.AblateAutoTune(0.25, smallPerf, 0)
	fatal(err)
	bench.RenderAblation(out, "auto-tuned vs fixed batch plans (cost-model argmin)", rows)

	rows, _, err = bench.AblatePacking(0.25, smallPerf, 0)
	fatal(err)
	bench.RenderAblation(out, "packed device images and kernel fusion (H2D volume vs launch count)", rows)

	rows, _, err = bench.AblateLSH(0)
	fatal(err)
	bench.RenderAblation(out, "LSH banding candidate filter (recall vs candidate volume)", rows)

	rows, err = bench.AblateFullSort(0.25, smallPerf)
	fatal(err)
	bench.RenderAblation(out, "fused top-s selection vs literal Algorithm 1 segmented sort", rows)

	rows, err = bench.AblateGPUAggregation(0.25, smallPerf)
	fatal(err)
	bench.RenderAblation(out, "CPU-side vs device-side shingle aggregation (beyond-paper extension)", rows)

	rows, err = bench.AblateHostParallel(0.25, smallPerf, 0)
	fatal(err)
	bench.RenderAblation(out, "execution strategies: serial vs parallel host vs sequential vs pipelined gpClust", rows)

	rows, err = bench.AblateMultiGPU(0.005, smallPerf, []int{1, 2, 4})
	fatal(err)
	bench.RenderAblation(out, "multi-GPU batch distribution (beyond-paper extension)", rows)

	rows, err = bench.AblateFaults(0.25, smallPerf)
	fatal(err)
	bench.RenderAblation(out, "fault injection and recovery (identical clustering under device faults)", rows)

	rows, _, err = bench.AblatePGraphBackend(0, 0)
	fatal(err)
	bench.RenderAblation(out, "pGraph Smith-Waterman verification backends (Table I trajectory)", rows)

	rows, _, err = bench.AblateServe(0)
	fatal(err)
	bench.RenderAblation(out, "resident incremental serving (gpclust-serve vs from-scratch re-cluster)", rows)

	rows, err = bench.AblateShingleParams(qualityScale, bench.QualityOptions(), minSize)
	fatal(err)
	bench.RenderAblation(out, "shingle parameters s, c (sensitivity driver, Section IV-D)", rows)

	rows, err = bench.AblateReportModes(0.25, smallPerf)
	fatal(err)
	bench.RenderAblation(out, "Phase III reporting: union-find partition vs overlapping components", rows)

	rows, err = bench.AblateGOSK(qualityScale, minSize)
	fatal(err)
	bench.RenderAblation(out, "GOS baseline fixed k", rows)

	rows, err = bench.CompareMCL(qualityScale, bench.QualityOptions(), gos.DefaultOptions(), minSize)
	fatal(err)
	bench.RenderAblation(out, "extended baseline: Markov Clustering (the conventional choice)", rows)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
