// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section IV). Each benchmark runs the corresponding experiment at a
// CI-friendly scale and reports the reproduced quantities as custom metrics
// (speedups, sensitivities, densities), so `go test -bench=. -benchmem`
// doubles as a results sheet. cmd/experiments runs the same experiments at
// larger scales with full rendering.
package gpclust_test

import (
	"testing"

	"gpclust/internal/bench"
	"gpclust/internal/core"
	"gpclust/internal/gos"
	"gpclust/internal/gpusim"
	"gpclust/internal/graph"
)

// benchOptions trims the trial counts so a single benchmark iteration stays
// in seconds; cmd/experiments uses the paper's c1=200/c2=100.
func benchOptions() core.Options {
	o := core.DefaultOptions()
	o.C1, o.C2 = 50, 25
	return o
}

// BenchmarkTable1_20KGraph reproduces Table I's 20K-sequence row: serial
// pClust vs gpClust on the 20K-shaped similarity graph.
func BenchmarkTable1_20KGraph(b *testing.B) {
	o := benchOptions()
	o.UseFullSort = true // the paper's literal Algorithm 1 implementation
	g, _ := graph.Planted(bench.Paper20KConfig(0.5))
	b.ResetTimer()
	var row *bench.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = bench.RunTable1Row("20K", g, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.TotalSpeedup, "total-speedup-X")
	b.ReportMetric(row.GPUSpeedup, "gpu-speedup-X")
	b.ReportMetric(row.GPU.Timings.GPUNs/1e9, "gpu-sec")
	b.ReportMetric(row.Serial.Timings.TotalNs/1e9, "serial-sec")
}

// BenchmarkTable1_2MGraph reproduces Table I's 2M-sequence row at 1/100
// scale; the GPU-part speedup grows with workload exactly as the paper's
// 44.86X → 373.71X progression (the occupancy effect of Section IV-C).
func BenchmarkTable1_2MGraph(b *testing.B) {
	o := benchOptions()
	o.UseFullSort = true
	g, _ := graph.Planted(bench.Paper2MConfig(0.01))
	b.ResetTimer()
	var row *bench.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = bench.RunTable1Row("2M", g, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.TotalSpeedup, "total-speedup-X")
	b.ReportMetric(row.GPUSpeedup, "gpu-speedup-X")
	b.ReportMetric(row.GPU.Timings.D2HNs/1e9, "d2h-sec")
}

// BenchmarkTable2_GraphStats reproduces Table II: building and measuring
// the 2M-shaped input similarity graph.
func BenchmarkTable2_GraphStats(b *testing.B) {
	var st graph.Stats
	for i := 0; i < b.N; i++ {
		st = bench.RunTable2(0.01)
	}
	b.ReportMetric(st.AvgDegree, "avg-degree")
	b.ReportMetric(st.StdDegree, "std-degree")
	b.ReportMetric(float64(st.LargestCC), "largest-cc")
}

func runQualityBench(b *testing.B, scale float64) *bench.QualityResult {
	b.Helper()
	var q *bench.QualityResult
	for i := 0; i < b.N; i++ {
		var err error
		q, err = bench.RunQuality(scale, bench.QualityOptions(), gos.DefaultOptions(), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	return q
}

// BenchmarkTable3_Quality reproduces Table III: PPV/NPV/SP/SE of gpClust and
// the GOS k-neighbor baseline against the planted benchmark families.
func BenchmarkTable3_Quality(b *testing.B) {
	q := runQualityBench(b, 0.005)
	b.ReportMetric(100*q.GPClust.PPV(), "gpclust-PPV-%")
	b.ReportMetric(100*q.GPClust.Sensitivity(), "gpclust-SE-%")
	b.ReportMetric(100*q.GOS.PPV(), "gos-PPV-%")
	b.ReportMetric(100*q.GOS.Sensitivity(), "gos-SE-%")
}

// BenchmarkTable4_Partitions reproduces Table IV: partition statistics and
// cluster densities for benchmark, GOS and gpClust.
func BenchmarkTable4_Partitions(b *testing.B) {
	q := runQualityBench(b, 0.005)
	b.ReportMetric(float64(q.GPClustStats.Groups), "gpclust-groups")
	b.ReportMetric(float64(q.GOSStats.Groups), "gos-groups")
	b.ReportMetric(float64(q.BenchStats.Groups), "bench-groups")
	b.ReportMetric(q.GPClustDensity, "gpclust-density")
	b.ReportMetric(q.GOSDensity, "gos-density")
	b.ReportMetric(q.BenchDensity, "bench-density")
}

// BenchmarkFig5a_GroupSizeDist reproduces Figure 5(a): the group-size
// histograms of the two partitions.
func BenchmarkFig5a_GroupSizeDist(b *testing.B) {
	q := runQualityBench(b, 0.005)
	total := 0
	for _, c := range q.GroupHistGPClust {
		total += c
	}
	b.ReportMetric(float64(total), "gpclust-groups≥20")
	total = 0
	for _, c := range q.GroupHistGOS {
		total += c
	}
	b.ReportMetric(float64(total), "gos-groups≥20")
}

// BenchmarkFig5b_SeqDist reproduces Figure 5(b): the per-bin sequence
// counts of the two partitions.
func BenchmarkFig5b_SeqDist(b *testing.B) {
	q := runQualityBench(b, 0.005)
	var total int64
	for _, c := range q.SeqHistGPClust {
		total += c
	}
	b.ReportMetric(float64(total), "gpclust-seqs")
	total = 0
	for _, c := range q.SeqHistGOS {
		total += c
	}
	b.ReportMetric(float64(total), "gos-seqs")
}

// BenchmarkLargeScale_PacificOcean reproduces the headline demonstration:
// the 11M-vertex / 640M-edge Pacific Ocean graph (scaled), "in about 94
// minutes".
func BenchmarkLargeScale_PacificOcean(b *testing.B) {
	o := benchOptions()
	o.UseFullSort = true
	var r *bench.LargeScaleResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.RunLargeScale(0.001, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Minutes, "virtual-minutes")
	b.ReportMetric(float64(r.Stats.Edges), "edges")
}

// BenchmarkAblation_AsyncTransfer quantifies the paper's future-work claim
// that asynchronous transfers hide the Data_g→c overhead.
func BenchmarkAblation_AsyncTransfer(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblateAsync(0.004, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Value, "sync-sec")
	b.ReportMetric(rows[2].Value, "async-sec")
	b.ReportMetric(rows[3].Value, "saved-sec")
}

// BenchmarkAblation_BatchSize sweeps Algorithm 2's device batch budget.
func BenchmarkAblation_BatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblateBatchSize(0.1, benchOptions(), []int{0, 100_000, 20_000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_FullSort compares the fused top-s kernel with the
// literal segmented-sort-then-select of Algorithm 1.
func BenchmarkAblation_FullSort(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblateFullSort(0.1, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Value, "fused-gpu-sec")
	b.ReportMetric(rows[1].Value, "fullsort-gpu-sec")
}

// BenchmarkAblation_ShingleParams sweeps (s1, c1), the sensitivity knobs of
// Section IV-D.
func BenchmarkAblation_ShingleParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblateShingleParams(0.002, bench.QualityOptions(), 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ReportModes compares Phase III's two reporting options.
func BenchmarkAblation_ReportModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblateReportModes(0.1, benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_GOSK sweeps the GOS baseline's fixed k.
func BenchmarkAblation_GOSK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblateGOSK(0.002, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClusterHost measures a host backend's real wall time and allocations
// on the 20K-scale graph (workers = 0 selects the serial backend).
func benchClusterHost(b *testing.B, workers int) {
	o := benchOptions()
	g, _ := graph.Planted(bench.Paper20KConfig(0.5))
	b.ReportAllocs()
	b.ResetTimer()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		if workers == 0 {
			res, err = core.ClusterSerial(g, o)
		} else {
			o.Workers = workers
			res, err = core.ClusterParallel(g, o)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Wall.TotalNs)/1e6, "wall-ms")
	b.ReportMetric(float64(res.NumClusters()), "clusters")
}

// BenchmarkClusterSerial_20K is the single-core host baseline for the
// ClusterParallel benchmarks below; b.N wall time is the comparison metric.
func BenchmarkClusterSerial_20K(b *testing.B) { benchClusterHost(b, 0) }

// BenchmarkClusterParallel_* runs the multi-core host backend at several
// pool sizes. On a multi-core machine wall time must drop vs the serial
// baseline from 2 workers up; allocs/op shows the sync.Pool reuse holding
// the hot-loop allocation rate flat as workers grow.
func BenchmarkClusterParallel_W1(b *testing.B) { benchClusterHost(b, 1) }
func BenchmarkClusterParallel_W2(b *testing.B) { benchClusterHost(b, 2) }
func BenchmarkClusterParallel_W4(b *testing.B) { benchClusterHost(b, 4) }
func BenchmarkClusterParallel_W8(b *testing.B) { benchClusterHost(b, 8) }

// BenchmarkGPU_PipelinedVsSequentialBatches compares the strictly
// sequential batch loop with the double-buffered pipelined loop on a
// multi-batch plan; the virtual-clock totals are reported as metrics and
// the pipelined one must be lower (transfer coalescing + overlap).
func BenchmarkGPU_PipelinedVsSequentialBatches(b *testing.B) {
	o := benchOptions()
	o.BatchWords = 20_000 // force several batches at this scale
	g, _ := graph.Planted(bench.Paper20KConfig(0.5))
	b.ReportAllocs()
	b.ResetTimer()
	var seq, pipe *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		seq, err = core.ClusterGPU(g, gpusim.MustNew(gpusim.K20Config()), o)
		if err != nil {
			b.Fatal(err)
		}
		op := o
		op.PipelineBatches = true
		pipe, err = core.ClusterGPU(g, gpusim.MustNew(gpusim.K20Config()), op)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(seq.Timings.TotalNs/1e9, "seq-virtual-sec")
	b.ReportMetric(pipe.Timings.TotalNs/1e9, "pipelined-virtual-sec")
	b.ReportMetric((seq.Timings.TotalNs-pipe.Timings.TotalNs)/1e9, "saved-virtual-sec")
	if pipe.Timings.TotalNs >= seq.Timings.TotalNs {
		b.Fatalf("pipelined virtual total %.2fs not below sequential %.2fs",
			pipe.Timings.TotalNs/1e9, seq.Timings.TotalNs/1e9)
	}
}

// BenchmarkAblation_HostParallel runs the four-way execution-strategy
// comparison (serial, parallel host, sequential gpClust, pipelined gpClust).
func BenchmarkAblation_HostParallel(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblateHostParallel(0.1, benchOptions(), 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Value, "serial-wall-sec")
	b.ReportMetric(rows[1].Value, "parallel-wall-sec")
	b.ReportMetric(rows[2].Value, "gpu-seq-virtual-sec")
	b.ReportMetric(rows[3].Value, "gpu-pipelined-virtual-sec")
}

// BenchmarkAblation_GPUAggregation measures the beyond-paper extension that
// moves shingle-key computation and tuple sorting onto the device.
func BenchmarkAblation_GPUAggregation(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblateGPUAggregation(0.1, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Value, "cpu-agg-sec")
	b.ReportMetric(rows[1].Value, "gpu-agg-sec")
}
