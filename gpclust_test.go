package gpclust_test

import (
	"reflect"
	"testing"

	"gpclust"
)

// TestPublicAPIPipeline exercises the whole public surface end to end:
// generate a metagenome, build its homology graph, cluster it serially, on
// the simulated GPU, and with the GOS baseline, then score everything
// against the planted benchmark.
func TestPublicAPIPipeline(t *testing.T) {
	mg, err := gpclust.GenerateMetagenome(gpclust.DefaultMetagenomeConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	g, pst, err := gpclust.BuildHomologyGraph(mg.Seqs, gpclust.DefaultPGraphConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pst.Edges == 0 {
		t.Fatal("homology graph has no edges")
	}

	opts := gpclust.DefaultOptions()
	opts.C1, opts.C2 = 30, 15 // test speed

	serial, err := gpclust.Cluster(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpclust.NewK20()
	gpu, err := gpclust.ClusterGPU(g, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Clustering, gpu.Clustering) {
		t.Fatal("serial and GPU clusterings differ through the public API")
	}

	gosClusters, err := gpclust.ClusterGOS(g, gpclust.GOSOptions{K: 3, RequireEdge: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(gosClusters) == 0 {
		t.Fatal("GOS baseline returned nothing")
	}

	n := g.NumVertices()
	bench := mg.SuperFamily
	minSize := 5
	oursL := gpclust.LabelsFromClusters(serial.Clustering.Clusters, n, minSize)
	gosL := gpclust.LabelsFromClusters(gosClusters, n, minSize)
	ours := gpclust.PairConfusion(oursL, bench, n)
	gosC := gpclust.PairConfusion(gosL, bench, n)
	if ours.PPV() < 0.8 {
		t.Errorf("gpClust PPV = %.2f, want ≥ 0.8 on planted data", ours.PPV())
	}
	if ours.TP == 0 || gosC.TP+gosC.FN == 0 {
		t.Fatal("degenerate confusion matrices")
	}

	mean, _ := gpclust.DensityStats(g, serial.Clustering.ClustersOfSizeAtLeast(minSize))
	if mean <= 0 {
		t.Fatal("non-positive mean cluster density")
	}
}

func TestPublicGraphHelpers(t *testing.T) {
	b := gpclust.NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	st := gpclust.ComputeGraphStats(g)
	if st.Vertices != 3 || st.Edges != 2 || st.LargestCC != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if gpclust.Density(g, []uint32{0, 1, 2}) != 2.0/3 {
		t.Fatal("density through facade wrong")
	}
}

func TestDeviceFacade(t *testing.T) {
	cfg := gpclust.K20Config()
	if cfg.TotalCores() != 2496 {
		t.Fatalf("K20 core count = %d", cfg.TotalCores())
	}
	if _, err := gpclust.NewDevice(gpclust.DeviceConfig{}); err == nil {
		t.Fatal("zero device config accepted")
	}
	dev := gpclust.NewK20()
	if dev.FreeMemory() != 5<<30 {
		t.Fatalf("fresh K20 free memory = %d", dev.FreeMemory())
	}
}
