package gpclust_test

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd/ binaries into dir and returns its path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// TestCLIPipeline drives the complete command-line toolchain: generate a
// synthetic metagenome, build its homology graph, cluster it on the
// simulated GPU, and score the clusters against the ground truth.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	genseq := buildTool(t, dir, "genseq")
	pgraph := buildTool(t, dir, "pgraph")
	gpclust := buildTool(t, dir, "gpclust")
	quality := buildTool(t, dir, "quality")

	fasta := filepath.Join(dir, "orfs.fa")
	truth := filepath.Join(dir, "truth.tsv")
	graphF := filepath.Join(dir, "graph.txt")
	clusters := filepath.Join(dir, "clusters.txt")

	run(t, genseq, "-mode", "seqs", "-n", "300", "-fasta", fasta, "-truth", truth)
	if fi, err := os.Stat(fasta); err != nil || fi.Size() == 0 {
		t.Fatalf("genseq produced no FASTA: %v", err)
	}

	out := run(t, pgraph, "-in", fasta, "-out", graphF)
	if !strings.Contains(out, "edges") {
		t.Fatalf("pgraph output unexpected: %s", out)
	}

	out = run(t, gpclust, "-in", graphF, "-backend", "gpu",
		"-c1", "40", "-c2", "20", "-out", clusters)
	if !strings.Contains(out, "clusters") || !strings.Contains(out, "virtual clock") {
		t.Fatalf("gpclust output unexpected: %s", out)
	}

	out = run(t, quality, "-clusters", clusters, "-truth", truth,
		"-graph", graphF, "-minsize", "5", "-column", "superfamily")
	if !strings.Contains(out, "PPV=") || !strings.Contains(out, "density") {
		t.Fatalf("quality output unexpected: %s", out)
	}

	// Serial and GPU backends must print identical cluster files.
	serialClusters := filepath.Join(dir, "serial.txt")
	run(t, gpclust, "-in", graphF, "-backend", "serial",
		"-c1", "40", "-c2", "20", "-out", serialClusters)
	a, err := os.ReadFile(clusters)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(serialClusters)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("serial and GPU CLI runs produced different cluster files")
	}
}

// TestCLIGraphModeAndBinary exercises genseq's graph mode, the binary graph
// format and the multi-GPU / gpuagg / profile / trace flags.
func TestCLIGraphModeAndBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	genseq := buildTool(t, dir, "genseq")
	gpclust := buildTool(t, dir, "gpclust")

	graphBin := filepath.Join(dir, "graph.bin")
	truth := filepath.Join(dir, "truth.tsv")
	run(t, genseq, "-mode", "graph", "-n", "1500", "-graph", graphBin, "-truth", truth)

	traceF := filepath.Join(dir, "trace.json")
	out := run(t, gpclust, "-in", graphBin, "-backend", "gpu",
		"-c1", "30", "-c2", "15", "-gpuagg", "-profile", "-trace", traceF,
		"-out", filepath.Join(dir, "c1.txt"))
	if !strings.Contains(out, "kernel profile") || !strings.Contains(out, "sort_pairs64") {
		t.Fatalf("profile output missing kernels: %s", out)
	}
	if fi, err := os.Stat(traceF); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}

	out = run(t, gpclust, "-in", graphBin, "-backend", "gpu",
		"-c1", "30", "-c2", "15", "-ngpu", "2", "-out", filepath.Join(dir, "c2.txt"))
	if !strings.Contains(out, "clusters") {
		t.Fatalf("multi-gpu run output unexpected: %s", out)
	}
	a, _ := os.ReadFile(filepath.Join(dir, "c1.txt"))
	b, _ := os.ReadFile(filepath.Join(dir, "c2.txt"))
	if string(a) != string(b) {
		t.Fatal("gpuagg and multi-gpu runs produced different clusterings")
	}

	// Serial decomposed backend agrees too (statistically different random
	// realization, but the run must succeed and produce a valid file).
	out = run(t, gpclust, "-in", graphBin, "-backend", "serial", "-workers", "2",
		"-c1", "30", "-c2", "15", "-out", filepath.Join(dir, "c3.txt"))
	if !strings.Contains(out, "clusters") {
		t.Fatalf("decomposed run output unexpected: %s", out)
	}
}

// runFail runs bin expecting a non-zero exit; it returns the combined
// output for message assertions.
func runFail(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v: expected failure, exited 0\n%s", filepath.Base(bin), args, out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("%s %v: did not run: %v", filepath.Base(bin), args, err)
	}
	return string(out)
}

// TestCLIFailurePaths exercises the toolchain's error handling: unreadable
// input, invalid flag combinations, and fault injection past the retry
// budget must all exit non-zero with a readable message — never a panic or
// silent success.
func TestCLIFailurePaths(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	genseq := buildTool(t, dir, "genseq")
	pgraphBin := buildTool(t, dir, "pgraph")
	gpclust := buildTool(t, dir, "gpclust")

	fasta := filepath.Join(dir, "orfs.fa")
	truth := filepath.Join(dir, "truth.tsv")
	graphF := filepath.Join(dir, "graph.txt")
	run(t, genseq, "-mode", "seqs", "-n", "120", "-fasta", fasta, "-truth", truth)
	run(t, pgraphBin, "-in", fasta, "-out", graphF)

	missing := filepath.Join(dir, "no-such-file")
	cases := []struct {
		name string
		bin  string
		args []string
		want string
	}{
		{"gpclust missing input", gpclust, []string{"-in", missing}, "no-such-file"},
		{"gpclust no input flag", gpclust, nil, "-in is required"},
		{"gpclust pipeline without gpu", gpclust,
			[]string{"-in", graphF, "-backend", "serial", "-pipeline"}, "-pipeline requires -backend gpu"},
		{"gpclust faults without gpu", gpclust,
			[]string{"-in", graphF, "-backend", "parallel", "-faults", "h2d op=1"}, "-faults requires -backend gpu"},
		{"gpclust bad schedule", gpclust,
			[]string{"-in", graphF, "-backend", "gpu", "-faults", "warp op=zero"}, "faults"},
		{"gpclust fault storm no fallback", gpclust,
			[]string{"-in", graphF, "-backend", "gpu", "-c1", "20", "-c2", "10",
				"-faults", "h2d op=1 count=1000000", "-retries", "1", "-nofallback"},
			"retry budget exhausted"},
		{"pgraph missing input", pgraphBin, []string{"-in", missing}, "no-such-file"},
		{"pgraph pipeline without gpu", pgraphBin,
			[]string{"-in", fasta, "-pipeline"}, "-pipeline requires -gpu"},
		{"pgraph bad schedule", pgraphBin,
			[]string{"-in", fasta, "-gpu", "-faults", "h2d op="}, "faults"},
		{"pgraph fault storm no fallback", pgraphBin,
			[]string{"-in", fasta, "-gpu", "-faults", "kernel op=1 count=1000000",
				"-retries", "1", "-nofallback"},
			"retry budget exhausted"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := runFail(t, tc.bin, tc.args...)
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output does not mention %q:\n%s", tc.want, out)
			}
		})
	}
}

// TestCLIFaultInjectionRecovers checks the happy chaos path end to end:
// injected faults are reported on stderr, recovery is summarized, and the
// cluster file is identical to the fault-free run's.
func TestCLIFaultInjectionRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	genseq := buildTool(t, dir, "genseq")
	gpclust := buildTool(t, dir, "gpclust")

	graphBin := filepath.Join(dir, "graph.bin")
	run(t, genseq, "-mode", "graph", "-n", "800", "-graph", graphBin,
		"-truth", filepath.Join(dir, "truth.tsv"))

	clean := filepath.Join(dir, "clean.txt")
	faulted := filepath.Join(dir, "faulted.txt")
	run(t, gpclust, "-in", graphBin, "-backend", "gpu", "-c1", "30", "-c2", "15",
		"-batch", "5000", "-out", clean)
	out := run(t, gpclust, "-in", graphBin, "-backend", "gpu", "-c1", "30", "-c2", "15",
		"-batch", "5000", "-faults", "h2d op=2; malloc op=4 count=2; slowsm op=1 x=3", "-out", faulted)
	if !strings.Contains(out, "injected faults:") || !strings.Contains(out, "recovery:") {
		t.Fatalf("fault summary missing from output:\n%s", out)
	}
	a, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("faulted CLI run produced a different cluster file than the clean run")
	}
}

// TestCLIExperiments smoke-tests the experiment driver's cheapest paths.
func TestCLIExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	experiments := buildTool(t, dir, "experiments")

	out := run(t, experiments, "-exp", "table2", "-scale2m", "0.002")
	if !strings.Contains(out, "Table II") {
		t.Fatalf("table2 output unexpected: %s", out)
	}
	out = run(t, experiments, "-exp", "table3",
		"-scalequality", "0.002", "-c1", "40", "-c2", "20", "-minsize", "10")
	if !strings.Contains(out, "Table III") {
		t.Fatalf("table3 output unexpected: %s", out)
	}
}
