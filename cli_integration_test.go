package gpclust_test

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd/ binaries into dir and returns its path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// TestCLIPipeline drives the complete command-line toolchain: generate a
// synthetic metagenome, build its homology graph, cluster it on the
// simulated GPU, and score the clusters against the ground truth.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	genseq := buildTool(t, dir, "genseq")
	pgraph := buildTool(t, dir, "pgraph")
	gpclust := buildTool(t, dir, "gpclust")
	quality := buildTool(t, dir, "quality")

	fasta := filepath.Join(dir, "orfs.fa")
	truth := filepath.Join(dir, "truth.tsv")
	graphF := filepath.Join(dir, "graph.txt")
	clusters := filepath.Join(dir, "clusters.txt")

	run(t, genseq, "-mode", "seqs", "-n", "300", "-fasta", fasta, "-truth", truth)
	if fi, err := os.Stat(fasta); err != nil || fi.Size() == 0 {
		t.Fatalf("genseq produced no FASTA: %v", err)
	}

	out := run(t, pgraph, "-in", fasta, "-out", graphF)
	if !strings.Contains(out, "edges") {
		t.Fatalf("pgraph output unexpected: %s", out)
	}

	out = run(t, gpclust, "-in", graphF, "-backend", "gpu",
		"-c1", "40", "-c2", "20", "-out", clusters)
	if !strings.Contains(out, "clusters") || !strings.Contains(out, "virtual clock") {
		t.Fatalf("gpclust output unexpected: %s", out)
	}

	out = run(t, quality, "-clusters", clusters, "-truth", truth,
		"-graph", graphF, "-minsize", "5", "-column", "superfamily")
	if !strings.Contains(out, "PPV=") || !strings.Contains(out, "density") {
		t.Fatalf("quality output unexpected: %s", out)
	}

	// Serial and GPU backends must print identical cluster files.
	serialClusters := filepath.Join(dir, "serial.txt")
	run(t, gpclust, "-in", graphF, "-backend", "serial",
		"-c1", "40", "-c2", "20", "-out", serialClusters)
	a, err := os.ReadFile(clusters)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(serialClusters)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("serial and GPU CLI runs produced different cluster files")
	}
}

// TestCLIGraphModeAndBinary exercises genseq's graph mode, the binary graph
// format and the multi-GPU / gpuagg / profile / trace flags.
func TestCLIGraphModeAndBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	genseq := buildTool(t, dir, "genseq")
	gpclust := buildTool(t, dir, "gpclust")

	graphBin := filepath.Join(dir, "graph.bin")
	truth := filepath.Join(dir, "truth.tsv")
	run(t, genseq, "-mode", "graph", "-n", "1500", "-graph", graphBin, "-truth", truth)

	traceF := filepath.Join(dir, "trace.json")
	out := run(t, gpclust, "-in", graphBin, "-backend", "gpu",
		"-c1", "30", "-c2", "15", "-gpuagg", "-profile", "-trace", traceF,
		"-out", filepath.Join(dir, "c1.txt"))
	if !strings.Contains(out, "kernel profile") || !strings.Contains(out, "sort_pairs64") {
		t.Fatalf("profile output missing kernels: %s", out)
	}
	if fi, err := os.Stat(traceF); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}

	out = run(t, gpclust, "-in", graphBin, "-backend", "gpu",
		"-c1", "30", "-c2", "15", "-ngpu", "2", "-out", filepath.Join(dir, "c2.txt"))
	if !strings.Contains(out, "clusters") {
		t.Fatalf("multi-gpu run output unexpected: %s", out)
	}
	a, _ := os.ReadFile(filepath.Join(dir, "c1.txt"))
	b, _ := os.ReadFile(filepath.Join(dir, "c2.txt"))
	if string(a) != string(b) {
		t.Fatal("gpuagg and multi-gpu runs produced different clusterings")
	}

	// Serial decomposed backend agrees too (statistically different random
	// realization, but the run must succeed and produce a valid file).
	out = run(t, gpclust, "-in", graphBin, "-backend", "serial", "-workers", "2",
		"-c1", "30", "-c2", "15", "-out", filepath.Join(dir, "c3.txt"))
	if !strings.Contains(out, "clusters") {
		t.Fatalf("decomposed run output unexpected: %s", out)
	}
}

// runFail runs bin expecting a non-zero exit; it returns the combined
// output for message assertions.
func runFail(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v: expected failure, exited 0\n%s", filepath.Base(bin), args, out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("%s %v: did not run: %v", filepath.Base(bin), args, err)
	}
	return string(out)
}

// TestCLIFailurePaths exercises the toolchain's error handling: unreadable
// input, invalid flag combinations, and fault injection past the retry
// budget must all exit non-zero with a readable message — never a panic or
// silent success.
func TestCLIFailurePaths(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	genseq := buildTool(t, dir, "genseq")
	pgraphBin := buildTool(t, dir, "pgraph")
	gpclust := buildTool(t, dir, "gpclust")

	fasta := filepath.Join(dir, "orfs.fa")
	truth := filepath.Join(dir, "truth.tsv")
	graphF := filepath.Join(dir, "graph.txt")
	run(t, genseq, "-mode", "seqs", "-n", "120", "-fasta", fasta, "-truth", truth)
	run(t, pgraphBin, "-in", fasta, "-out", graphF)

	missing := filepath.Join(dir, "no-such-file")
	cases := []struct {
		name string
		bin  string
		args []string
		want string
	}{
		{"gpclust missing input", gpclust, []string{"-in", missing}, "no-such-file"},
		{"gpclust no input flag", gpclust, nil, "-in is required"},
		{"gpclust pipeline without gpu", gpclust,
			[]string{"-in", graphF, "-backend", "serial", "-pipeline"}, "-pipeline requires -backend gpu"},
		{"gpclust faults without gpu", gpclust,
			[]string{"-in", graphF, "-backend", "parallel", "-faults", "h2d op=1"}, "-faults requires -backend gpu"},
		{"gpclust bad schedule", gpclust,
			[]string{"-in", graphF, "-backend", "gpu", "-faults", "warp op=zero"}, "faults"},
		{"gpclust fault storm no fallback", gpclust,
			[]string{"-in", graphF, "-backend", "gpu", "-c1", "20", "-c2", "10",
				"-faults", "h2d op=1 count=1000000", "-retries", "1", "-nofallback"},
			"retry budget exhausted"},
		{"pgraph missing input", pgraphBin, []string{"-in", missing}, "no-such-file"},
		{"pgraph pipeline without gpu", pgraphBin,
			[]string{"-in", fasta, "-pipeline"}, "-pipeline requires -gpu"},
		{"pgraph bad schedule", pgraphBin,
			[]string{"-in", fasta, "-gpu", "-faults", "h2d op="}, "faults"},
		{"pgraph fault storm no fallback", pgraphBin,
			[]string{"-in", fasta, "-gpu", "-faults", "kernel op=1 count=1000000",
				"-retries", "1", "-nofallback"},
			"retry budget exhausted"},
		{"gpclust negative retries", gpclust,
			[]string{"-in", graphF, "-backend", "gpu", "-retries=-1"}, "-retries must be >= 0"},
		{"pgraph negative retries", pgraphBin,
			[]string{"-in", fasta, "-gpu", "-retries=-1"}, "-retries must be >= 0"},
		{"pgraph trace without gpu", pgraphBin,
			[]string{"-in", fasta, "-trace", filepath.Join(dir, "t.json")}, "-trace requires -gpu"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := runFail(t, tc.bin, tc.args...)
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output does not mention %q:\n%s", tc.want, out)
			}
		})
	}
}

// TestCLIFaultInjectionRecovers checks the happy chaos path end to end:
// injected faults are reported on stderr, recovery is summarized, and the
// cluster file is identical to the fault-free run's.
func TestCLIFaultInjectionRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	genseq := buildTool(t, dir, "genseq")
	gpclust := buildTool(t, dir, "gpclust")

	graphBin := filepath.Join(dir, "graph.bin")
	run(t, genseq, "-mode", "graph", "-n", "800", "-graph", graphBin,
		"-truth", filepath.Join(dir, "truth.tsv"))

	clean := filepath.Join(dir, "clean.txt")
	faulted := filepath.Join(dir, "faulted.txt")
	run(t, gpclust, "-in", graphBin, "-backend", "gpu", "-c1", "30", "-c2", "15",
		"-batch", "5000", "-out", clean)
	out := run(t, gpclust, "-in", graphBin, "-backend", "gpu", "-c1", "30", "-c2", "15",
		"-batch", "5000", "-faults", "h2d op=2; malloc op=4 count=2; slowsm op=1 x=3", "-out", faulted)
	if !strings.Contains(out, "injected faults:") || !strings.Contains(out, "recovery:") {
		t.Fatalf("fault summary missing from output:\n%s", out)
	}
	a, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("faulted CLI run produced a different cluster file than the clean run")
	}
}

// readTraceFile decodes a Chrome-trace JSON file and returns its traceEvents,
// failing if the array is absent or null (the Perfetto-rejection bug).
func readTraceFile(t *testing.T, path string) []map[string]any {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("%s is not valid JSON: %v", path, err)
	}
	if doc.TraceEvents == nil {
		t.Fatalf("%s: traceEvents is null or missing", path)
	}
	return doc.TraceEvents
}

// TestCLIObservability drives the -trace/-metrics surface of both tools: a
// faulted pipelined gpclust run and a pipelined pgraph build must write a
// parseable merged trace (host phase spans, lane spans and fault instants on
// distinct tracks) and an OpenMetrics file carrying the run's counters.
func TestCLIObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	genseq := buildTool(t, dir, "genseq")
	pgraphBin := buildTool(t, dir, "pgraph")
	gpclust := buildTool(t, dir, "gpclust")

	fasta := filepath.Join(dir, "orfs.fa")
	graphF := filepath.Join(dir, "graph.txt")
	run(t, genseq, "-mode", "seqs", "-n", "200", "-fasta", fasta,
		"-truth", filepath.Join(dir, "truth.tsv"))

	pTrace := filepath.Join(dir, "pgraph-trace.json")
	pMetrics := filepath.Join(dir, "pgraph-metrics.txt")
	run(t, pgraphBin, "-in", fasta, "-out", graphF, "-gpu", "-pipeline",
		"-batchwords", "8000", "-trace", pTrace, "-metrics", pMetrics)
	if evs := readTraceFile(t, pTrace); len(evs) == 0 {
		t.Fatal("pgraph trace has no events")
	}
	pm, err := os.ReadFile(pMetrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pgraph_edges_total", "gpclust_sw_pairs_total", "# EOF"} {
		if !strings.Contains(string(pm), want) {
			t.Fatalf("pgraph metrics missing %q:\n%s", want, pm)
		}
	}

	gTrace := filepath.Join(dir, "gpclust-trace.json")
	gMetrics := filepath.Join(dir, "gpclust-metrics.txt")
	out := run(t, gpclust, "-in", graphF, "-backend", "gpu", "-pipeline",
		"-c1", "30", "-c2", "15", "-batch", "5000", "-faults", "h2d op=2",
		"-trace", gTrace, "-metrics", gMetrics, "-out", filepath.Join(dir, "c.txt"))
	if !strings.Contains(out, "merged timeline written") || !strings.Contains(out, "metrics written") {
		t.Fatalf("observability summary missing from output:\n%s", out)
	}
	evs := readTraceFile(t, gTrace)
	cats := map[string]bool{}
	for _, ev := range evs {
		if cat, ok := ev["cat"].(string); ok {
			cats[cat] = true
		}
	}
	for _, want := range []string{"phases", "host-cpu", "lane0", "lane1", "faults", "recovery", "compute", "copy"} {
		if !cats[want] {
			t.Fatalf("gpclust trace missing %q events (have %v)", want, cats)
		}
	}
	gm, err := os.ReadFile(gMetrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gpclust_tuples_total", "gpclust_fault_transfer_retries_total",
		"gpclust_faults_injected_total", "gpclust_clusters", "# EOF"} {
		if !strings.Contains(string(gm), want) {
			t.Fatalf("gpclust metrics missing %q:\n%s", want, gm)
		}
	}

	// -metrics works on the host backends too (no device, no -trace).
	sMetrics := filepath.Join(dir, "serial-metrics.txt")
	run(t, gpclust, "-in", graphF, "-backend", "serial", "-c1", "30", "-c2", "15",
		"-metrics", sMetrics, "-out", filepath.Join(dir, "cs.txt"))
	sm, err := os.ReadFile(sMetrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sm), "gpclust_tuples_total") {
		t.Fatalf("serial metrics missing gpclust_tuples_total:\n%s", sm)
	}
}

// TestCLIExperiments smoke-tests the experiment driver's cheapest paths.
func TestCLIExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	experiments := buildTool(t, dir, "experiments")

	out := run(t, experiments, "-exp", "table2", "-scale2m", "0.002")
	if !strings.Contains(out, "Table II") {
		t.Fatalf("table2 output unexpected: %s", out)
	}
	out = run(t, experiments, "-exp", "table3",
		"-scalequality", "0.002", "-c1", "40", "-c2", "20", "-minsize", "10")
	if !strings.Contains(out, "Table III") {
		t.Fatalf("table3 output unexpected: %s", out)
	}
}
