package main

import (
	"strings"
	"testing"

	"gpclust/internal/bench"
)

func goodFile() benchFile {
	return benchFile{
		PR: 3,
		GoBench: []goBenchEntry{
			{Name: "BenchmarkBuild250", Iterations: 1, WallNsPerOp: 1e9},
		},
		Backends: []bench.PGraphBackendPoint{
			{Backend: "host", VirtualNs: 5e9, Edges: 120},
			{Backend: "gpu sequential", VirtualNs: 2e9, Edges: 120},
			{Backend: "gpu pipelined", VirtualNs: 1.5e9, Edges: 120},
		},
		Autotune: []bench.AutoTunePoint{
			{Workload: "gpclust", Setting: "auto", Auto: true,
				VirtualNs: 1e9, SchedNs: 5e8, PredictedNs: 4.5e8, Output: 42},
			{Workload: "gpclust", Setting: "fixed 40K words",
				VirtualNs: 2e9, SchedNs: 1.5e9, PredictedNs: 1.4e9, Output: 42},
			{Workload: "pgraph", Setting: "auto", Auto: true,
				VirtualNs: 1e8, SchedNs: 6e7, PredictedNs: 6e7, Output: 120},
			{Workload: "pgraph", Setting: "fixed 40K words sequential",
				VirtualNs: 2e8, SchedNs: 1.6e8, PredictedNs: 1.5e8, Output: 120},
		},
		LSH: []bench.LSHPoint{
			{Setting: "exact", Filter: "exact", Candidates: 6900, EdgeRecall: 1, FScore: 1,
				Identical: true, VirtualNs: 2e8},
			{Setting: "cascade conservative", Filter: "cascade", Bands: -1, Conservative: true,
				Candidates: 6900, EdgeRecall: 1, FScore: 1, Identical: true,
				VirtualNs: 2.5e8, SchedNs: 4e7, PredictedNs: 4.2e7},
			{Setting: "lsh 256x1 (default)", Filter: "lsh", Bands: 256, Rows: 1, Default: true,
				Candidates: 6600, EdgeRecall: 0.96, FScore: 0.98,
				VirtualNs: 2.2e8, SchedNs: 5e7, PredictedNs: 5.5e7},
		},
		Packing: []bench.PackingPoint{
			{Workload: "gpclust", Setting: "unpacked",
				VirtualNs: 2e9, H2DBytes: 1e8, SchedNs: 1.5e9, PredictedNs: 1.4e9, Output: 42},
			{Workload: "gpclust", Setting: "packed+fused", Packed: true, Fused: true,
				VirtualNs: 1.6e9, H2DBytes: 4e7, SchedNs: 1.2e9, PredictedNs: 1.1e9, Output: 42},
			{Workload: "pgraph", Setting: "unpacked",
				VirtualNs: 2e8, H2DBytes: 5e6, SchedNs: 1.6e8, PredictedNs: 1.5e8, Output: 120},
			{Workload: "pgraph", Setting: "packed+fused", Packed: true, Fused: true,
				VirtualNs: 1.8e8, H2DBytes: 4e6, SchedNs: 1.4e8, PredictedNs: 1.3e8, Output: 120},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validate(goodFile()); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*benchFile)
		want string
	}{
		{"empty file", func(f *benchFile) { *f = benchFile{} }, "no go benchmark entries"},
		{"nil backends", func(f *benchFile) { f.Backends = nil }, "no pgraph backend points"},
		{"too few backends", func(f *benchFile) { f.Backends = f.Backends[:2] }, "incomplete ablation"},
		{"unnamed benchmark", func(f *benchFile) { f.GoBench[0].Name = "" }, "has no name"},
		{"zero iterations", func(f *benchFile) { f.GoBench[0].Iterations = 0 }, "0 iterations"},
		{"unnamed backend", func(f *benchFile) { f.Backends[1].Backend = "" }, "no backend name"},
		{"zero virtual total", func(f *benchFile) { f.Backends[2].VirtualNs = 0 }, "non-positive virtual total"},
		{"edge mismatch", func(f *benchFile) { f.Backends[2].Edges = 121 }, "accepted 121 edges"},
		{"missing gpu points", func(f *benchFile) {
			f.Backends[1].Backend = "gpu A"
			f.Backends[2].Backend = "gpu B"
		}, "missing gpu sequential/pipelined"},
		{"pipelined not faster", func(f *benchFile) { f.Backends[2].VirtualNs = 3e9 }, "not below sequential"},
		{"no autotune points", func(f *benchFile) { f.Autotune = nil }, "no autotune points"},
		{"unnamed autotune point", func(f *benchFile) { f.Autotune[0].Setting = "" }, "no workload/setting"},
		{"zero autotune total", func(f *benchFile) { f.Autotune[1].VirtualNs = 0 }, "non-positive virtual total"},
		{"output mismatch", func(f *benchFile) { f.Autotune[1].Output = 43 }, "produced output 43"},
		{"duplicate auto point", func(f *benchFile) { f.Autotune[1].Auto = true }, "two auto points"},
		{"no auto point", func(f *benchFile) { f.Autotune[2].Auto = false }, "has no auto point"},
		{"no fixed points", func(f *benchFile) { f.Autotune = f.Autotune[2:3] }, "no fixed points to beat"},
		{"priced zero window", func(f *benchFile) { f.Autotune[0].SchedNs = 0 }, "zero-length scheduler window"},
		{"excess drift", func(f *benchFile) { f.Autotune[0].PredictedNs = 1e9 }, "cost-model drift"},
		{"auto loses", func(f *benchFile) {
			f.Autotune[0].VirtualNs = 3e9
			f.Autotune[0].SchedNs = 2.5e9
			f.Autotune[0].PredictedNs = 2.5e9
		}, "exceeds fixed"},
		{"no packing points", func(f *benchFile) { f.Packing = nil }, "no packing points"},
		{"unnamed packing point", func(f *benchFile) { f.Packing[0].Setting = "" }, "no workload/setting"},
		{"zero packing total", func(f *benchFile) { f.Packing[1].VirtualNs = 0 }, "non-positive virtual total"},
		{"zero packing bytes", func(f *benchFile) { f.Packing[1].H2DBytes = 0 }, "shipped 0 H2D bytes"},
		{"packing output mismatch", func(f *benchFile) { f.Packing[1].Output = 43 }, "produced output 43"},
		{"missing packed corner", func(f *benchFile) { f.Packing = f.Packing[:3] }, "missing the unpacked+unfused or packed+fused"},
		{"packed not faster", func(f *benchFile) { f.Packing[1].VirtualNs = 3e9 }, "not below unpacked"},
		{"packed not smaller", func(f *benchFile) { f.Packing[1].H2DBytes = 2e8 }, "packed image shipped"},
		{"packed cut too shallow", func(f *benchFile) { f.Packing[1].H2DBytes = 9e7 }, "want at most"},
		{"packed priced zero window", func(f *benchFile) { f.Packing[1].SchedNs = 0 }, "zero-length scheduler window"},
		{"packed excess drift", func(f *benchFile) { f.Packing[1].PredictedNs = 3e9 }, "cost-model drift"},
		{"no lsh points", func(f *benchFile) { f.LSH = nil }, "no lsh points"},
		{"unnamed lsh point", func(f *benchFile) { f.LSH[1].Setting = "" }, "no setting/filter"},
		{"zero lsh total", func(f *benchFile) { f.LSH[2].VirtualNs = 0 }, "non-positive virtual total"},
		{"zero lsh candidates", func(f *benchFile) { f.LSH[2].Candidates = 0 }, "admitted 0 candidates"},
		{"lsh recall out of range", func(f *benchFile) { f.LSH[2].EdgeRecall = 1.2 }, "scores out of range"},
		{"two exact baselines", func(f *benchFile) { f.LSH[2].Filter = "exact" }, "two exact baselines"},
		{"two default points", func(f *benchFile) { f.LSH[1].Default = true }, "two default points"},
		{"conservative not identical", func(f *benchFile) { f.LSH[1].Identical = false }, "not bit-identical"},
		{"conservative recall dip", func(f *benchFile) { f.LSH[1].EdgeRecall = 0.999 }, "not bit-identical"},
		{"lsh priced zero window", func(f *benchFile) { f.LSH[1].SchedNs = 0 }, "zero-length scheduler window"},
		{"lsh excess drift", func(f *benchFile) { f.LSH[2].PredictedNs = 2e8 }, "cost-model drift"},
		{"no exact baseline", func(f *benchFile) { f.LSH = f.LSH[1:] }, "no exact baseline"},
		{"no conservative point", func(f *benchFile) { f.LSH = []bench.LSHPoint{f.LSH[0], f.LSH[2]} }, "no conservative point"},
		{"no default point", func(f *benchFile) { f.LSH = f.LSH[:2] }, "no default point"},
		{"default recall below floor", func(f *benchFile) { f.LSH[2].EdgeRecall = 0.90 }, "below the 0.95 floor"},
		{"default not fewer candidates", func(f *benchFile) { f.LSH[2].Candidates = 6900 }, "not below exact's"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := goodFile()
			tc.mut(&f)
			err := validate(f)
			if err == nil {
				t.Fatal("validate accepted a bad file")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
