// Benchcheck validates a BENCH_pr3.json produced by scripts/bench.sh: the
// file must parse, every backend point must agree on the accepted edge
// count, and the pipelined GPU backend must post a lower virtual total than
// the sequential one — the acceptance criterion of the batched-SW PR.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"gpclust/internal/bench"
)

type goBenchEntry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	WallNsPerOp float64 `json:"wall_ns_per_op"`
}

type benchFile struct {
	PR       int                        `json:"pr"`
	GoBench  []goBenchEntry             `json:"go_bench"`
	Backends []bench.PGraphBackendPoint `json:"pgraph_backends"`
}

// validate checks the whole file and never indexes before checking
// presence: a truncated or hand-edited file yields an error naming the
// missing piece, not a panic.
func validate(f benchFile) error {
	if len(f.GoBench) == 0 {
		return fmt.Errorf("no go benchmark entries")
	}
	for i, b := range f.GoBench {
		if b.Name == "" {
			return fmt.Errorf("go benchmark entry %d has no name", i)
		}
		if b.Iterations <= 0 {
			return fmt.Errorf("go benchmark %q reports %d iterations", b.Name, b.Iterations)
		}
	}
	if len(f.Backends) == 0 {
		return fmt.Errorf("no pgraph backend points")
	}
	if len(f.Backends) < 3 {
		return fmt.Errorf("incomplete ablation: %d backend points, want at least 3", len(f.Backends))
	}
	byName := map[string]bench.PGraphBackendPoint{}
	for i, p := range f.Backends {
		if p.Backend == "" {
			return fmt.Errorf("backend point %d has no backend name", i)
		}
		if p.VirtualNs <= 0 {
			return fmt.Errorf("backend %q reports non-positive virtual total %.3f", p.Backend, p.VirtualNs)
		}
		if p.Edges != f.Backends[0].Edges {
			return fmt.Errorf("backend %q accepted %d edges, %q accepted %d",
				p.Backend, p.Edges, f.Backends[0].Backend, f.Backends[0].Edges)
		}
		byName[p.Backend] = p
	}
	seq, okSeq := byName["gpu sequential"]
	pipe, okPipe := byName["gpu pipelined"]
	if !okSeq || !okPipe {
		return fmt.Errorf("missing gpu sequential/pipelined backend points")
	}
	if pipe.VirtualNs >= seq.VirtualNs {
		return fmt.Errorf("pipelined virtual total %.3fms is not below sequential %.3fms",
			pipe.VirtualNs/1e6, seq.VirtualNs/1e6)
	}
	return nil
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck BENCH_pr3.json")
		os.Exit(2)
	}
	blob, err := os.ReadFile(os.Args[1])
	fatal(err)
	var f benchFile
	fatal(json.Unmarshal(blob, &f))
	fatal(validate(f))

	byName := map[string]bench.PGraphBackendPoint{}
	for _, p := range f.Backends {
		byName[p.Backend] = p
	}
	fmt.Printf("benchcheck: ok — pipelined %.1fms < sequential %.1fms virtual, %d edges on every backend\n",
		byName["gpu pipelined"].VirtualNs/1e6, byName["gpu sequential"].VirtualNs/1e6, f.Backends[0].Edges)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}
