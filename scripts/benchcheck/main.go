// Benchcheck validates a BENCH_pr3.json produced by scripts/bench.sh: the
// file must parse, every backend point must agree on the accepted edge
// count, and the pipelined GPU backend must post a lower virtual total than
// the sequential one — the acceptance criterion of the batched-SW PR.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"gpclust/internal/bench"
)

type benchFile struct {
	PR      int `json:"pr"`
	GoBench []struct {
		Name        string  `json:"name"`
		Iterations  int64   `json:"iterations"`
		WallNsPerOp float64 `json:"wall_ns_per_op"`
	} `json:"go_bench"`
	Backends []bench.PGraphBackendPoint `json:"pgraph_backends"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck BENCH_pr3.json")
		os.Exit(2)
	}
	blob, err := os.ReadFile(os.Args[1])
	fatal(err)
	var f benchFile
	fatal(json.Unmarshal(blob, &f))

	if len(f.GoBench) == 0 || len(f.Backends) < 3 {
		fatal(fmt.Errorf("incomplete file: %d go benchmarks, %d backend points",
			len(f.GoBench), len(f.Backends)))
	}
	byName := map[string]bench.PGraphBackendPoint{}
	for _, p := range f.Backends {
		if p.Edges != f.Backends[0].Edges {
			fatal(fmt.Errorf("backend %q accepted %d edges, %q accepted %d",
				p.Backend, p.Edges, f.Backends[0].Backend, f.Backends[0].Edges))
		}
		byName[p.Backend] = p
	}
	seq, okSeq := byName["gpu sequential"]
	pipe, okPipe := byName["gpu pipelined"]
	if !okSeq || !okPipe {
		fatal(fmt.Errorf("missing gpu sequential/pipelined backend points"))
	}
	if pipe.VirtualNs >= seq.VirtualNs {
		fatal(fmt.Errorf("pipelined virtual total %.3fms is not below sequential %.3fms",
			pipe.VirtualNs/1e6, seq.VirtualNs/1e6))
	}
	fmt.Printf("benchcheck: ok — pipelined %.1fms < sequential %.1fms virtual, %d edges on every backend\n",
		pipe.VirtualNs/1e6, seq.VirtualNs/1e6, f.Backends[0].Edges)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}
