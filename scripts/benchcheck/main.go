// Benchcheck validates a BENCH_pr9.json produced by scripts/bench.sh: the
// file must parse, every backend point must agree on the accepted edge
// count, the pipelined GPU backend must post a lower virtual total than
// the sequential one (the batched-SW PR's criterion), the auto-tune
// ablation must show the cost-model plan winning — per workload the auto
// point's virtual total is at or below every fixed setting's, all outputs
// agree, and every priced point's prediction lands within 25% of the
// measured scheduler window — the packing ablation must show the
// packed+fused layout beating unpacked+unfused per workload with the
// gpclust image cutting the H2D byte volume by at least 30%, and the LSH
// ablation must show the conservative cascade bit-identical to the exact
// filter while the default banding shape holds ≥ 0.95 edge recall with
// strictly fewer candidates than exact (every priced LSH plan inside the
// drift gate).
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"gpclust/internal/bench"
)

// maxDriftFrac is the cost-model accuracy gate: |predicted - measured| must
// stay within this fraction of the measured scheduler window on every
// priced point of the bench corpus.
const maxDriftFrac = 0.25

type goBenchEntry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	WallNsPerOp float64 `json:"wall_ns_per_op"`
}

type benchFile struct {
	PR       int                        `json:"pr"`
	GoBench  []goBenchEntry             `json:"go_bench"`
	Backends []bench.PGraphBackendPoint `json:"pgraph_backends"`
	Autotune []bench.AutoTunePoint      `json:"autotune"`
	Packing  []bench.PackingPoint       `json:"packing"`
	LSH      []bench.LSHPoint           `json:"lsh"`
}

// validate checks the whole file and never indexes before checking
// presence: a truncated or hand-edited file yields an error naming the
// missing piece, not a panic.
func validate(f benchFile) error {
	if len(f.GoBench) == 0 {
		return fmt.Errorf("no go benchmark entries")
	}
	for i, b := range f.GoBench {
		if b.Name == "" {
			return fmt.Errorf("go benchmark entry %d has no name", i)
		}
		if b.Iterations <= 0 {
			return fmt.Errorf("go benchmark %q reports %d iterations", b.Name, b.Iterations)
		}
	}
	if len(f.Backends) == 0 {
		return fmt.Errorf("no pgraph backend points")
	}
	if len(f.Backends) < 3 {
		return fmt.Errorf("incomplete ablation: %d backend points, want at least 3", len(f.Backends))
	}
	byName := map[string]bench.PGraphBackendPoint{}
	for i, p := range f.Backends {
		if p.Backend == "" {
			return fmt.Errorf("backend point %d has no backend name", i)
		}
		if p.VirtualNs <= 0 {
			return fmt.Errorf("backend %q reports non-positive virtual total %.3f", p.Backend, p.VirtualNs)
		}
		if p.Edges != f.Backends[0].Edges {
			return fmt.Errorf("backend %q accepted %d edges, %q accepted %d",
				p.Backend, p.Edges, f.Backends[0].Backend, f.Backends[0].Edges)
		}
		byName[p.Backend] = p
	}
	seq, okSeq := byName["gpu sequential"]
	pipe, okPipe := byName["gpu pipelined"]
	if !okSeq || !okPipe {
		return fmt.Errorf("missing gpu sequential/pipelined backend points")
	}
	if pipe.VirtualNs >= seq.VirtualNs {
		return fmt.Errorf("pipelined virtual total %.3fms is not below sequential %.3fms",
			pipe.VirtualNs/1e6, seq.VirtualNs/1e6)
	}
	if err := validateAutotune(f.Autotune); err != nil {
		return err
	}
	if err := validatePacking(f.Packing); err != nil {
		return err
	}
	return validateLSH(f.LSH)
}

// lshRecallFloor is the LSH PR's operating-point gate: the default banding
// shape must recover at least this fraction of the exact filter's edges.
const lshRecallFloor = 0.95

// validateLSH enforces the LSH candidate-filter PR's acceptance criteria on
// the filter sweep.
func validateLSH(points []bench.LSHPoint) error {
	if len(points) == 0 {
		return fmt.Errorf("no lsh points")
	}
	var exact, def *bench.LSHPoint
	sawConservative := false
	for i := range points {
		p := &points[i]
		if p.Setting == "" || p.Filter == "" {
			return fmt.Errorf("lsh point %d has no setting/filter", i)
		}
		if p.VirtualNs <= 0 {
			return fmt.Errorf("lsh %q reports non-positive virtual total %.3f", p.Setting, p.VirtualNs)
		}
		if p.Candidates <= 0 {
			return fmt.Errorf("lsh %q admitted %d candidates", p.Setting, p.Candidates)
		}
		if p.EdgeRecall < 0 || p.EdgeRecall > 1 || p.FScore < 0 || p.FScore > 1 {
			return fmt.Errorf("lsh %q scores out of range (recall %.3f, F %.3f)",
				p.Setting, p.EdgeRecall, p.FScore)
		}
		if p.Filter == "exact" {
			if exact != nil {
				return fmt.Errorf("lsh sweep has two exact baselines")
			}
			exact = p
		}
		if p.Default {
			if def != nil {
				return fmt.Errorf("lsh sweep has two default points")
			}
			def = p
		}
		if p.Conservative {
			sawConservative = true
			if !p.Identical || p.EdgeRecall != 1 || p.FScore != 1 {
				return fmt.Errorf("lsh %q (conservative) is not bit-identical to the exact path (recall %.4f, F %.4f)",
					p.Setting, p.EdgeRecall, p.FScore)
			}
		}
		if p.PredictedNs > 0 {
			if p.SchedNs <= 0 {
				return fmt.Errorf("lsh %q prices a zero-length scheduler window", p.Setting)
			}
			if drift := math.Abs(p.PredictedNs-p.SchedNs) / p.SchedNs; drift > maxDriftFrac {
				return fmt.Errorf("lsh %q cost-model drift %.0f%% exceeds %.0f%% (predicted %.3fms, measured %.3fms)",
					p.Setting, 100*drift, 100*maxDriftFrac, p.PredictedNs/1e6, p.SchedNs/1e6)
			}
		}
	}
	if exact == nil {
		return fmt.Errorf("lsh sweep has no exact baseline")
	}
	if !sawConservative {
		return fmt.Errorf("lsh sweep has no conservative point")
	}
	if def == nil {
		return fmt.Errorf("lsh sweep has no default point")
	}
	if def.EdgeRecall < lshRecallFloor {
		return fmt.Errorf("lsh default %q edge recall %.4f below the %.2f floor",
			def.Setting, def.EdgeRecall, lshRecallFloor)
	}
	if def.Candidates >= exact.Candidates {
		return fmt.Errorf("lsh default %q admitted %d candidates, not below exact's %d",
			def.Setting, def.Candidates, exact.Candidates)
	}
	return nil
}

// gpclustPackingCut is the packing PR's byte-volume gate: the gpclust packed
// image must ship at most this fraction of the unpacked H2D bytes. The
// image packs adjacency values at the graph's MinBits width, so the cut is
// well past 30% on any realistic graph.
const gpclustPackingCut = 0.70

// validatePacking enforces the packed-image PR's acceptance criteria on the
// {packed,unpacked}×{fused,unfused} sweep.
func validatePacking(points []bench.PackingPoint) error {
	if len(points) == 0 {
		return fmt.Errorf("no packing points")
	}
	type cell struct{ packed, fused bool }
	byCell := map[string]map[cell]bench.PackingPoint{}
	first := map[string]bench.PackingPoint{}
	for i, p := range points {
		if p.Workload == "" || p.Setting == "" {
			return fmt.Errorf("packing point %d has no workload/setting", i)
		}
		if p.VirtualNs <= 0 {
			return fmt.Errorf("packing %s %q reports non-positive virtual total %.3f",
				p.Workload, p.Setting, p.VirtualNs)
		}
		if p.H2DBytes <= 0 {
			return fmt.Errorf("packing %s %q shipped %d H2D bytes", p.Workload, p.Setting, p.H2DBytes)
		}
		if g, ok := first[p.Workload]; !ok {
			first[p.Workload] = p
		} else if p.Output != g.Output {
			return fmt.Errorf("packing %s %q produced output %d, %q produced %d",
				p.Workload, p.Setting, p.Output, g.Setting, g.Output)
		}
		if byCell[p.Workload] == nil {
			byCell[p.Workload] = map[cell]bench.PackingPoint{}
		}
		byCell[p.Workload][cell{p.Packed, p.Fused}] = p
		if p.Packed && p.PredictedNs > 0 {
			if p.SchedNs <= 0 {
				return fmt.Errorf("packing %s %q prices a zero-length scheduler window",
					p.Workload, p.Setting)
			}
			if drift := math.Abs(p.PredictedNs-p.SchedNs) / p.SchedNs; drift > maxDriftFrac {
				return fmt.Errorf("packing %s %q cost-model drift %.0f%% exceeds %.0f%% (predicted %.3fms, measured %.3fms)",
					p.Workload, p.Setting, 100*drift, 100*maxDriftFrac,
					p.PredictedNs/1e6, p.SchedNs/1e6)
			}
		}
	}
	for _, w := range []string{"gpclust", "pgraph"} {
		cells := byCell[w]
		base, okBase := cells[cell{false, false}]
		best, okBest := cells[cell{true, true}]
		if !okBase || !okBest {
			return fmt.Errorf("packing workload %q is missing the unpacked+unfused or packed+fused point", w)
		}
		if best.VirtualNs >= base.VirtualNs {
			return fmt.Errorf("packing %s: packed+fused virtual total %.3fms is not below unpacked %.3fms",
				w, best.VirtualNs/1e6, base.VirtualNs/1e6)
		}
		if best.H2DBytes >= base.H2DBytes {
			return fmt.Errorf("packing %s: packed image shipped %d H2D bytes, unpacked %d",
				w, best.H2DBytes, base.H2DBytes)
		}
		if w == "gpclust" && float64(best.H2DBytes) > gpclustPackingCut*float64(base.H2DBytes) {
			return fmt.Errorf("packing gpclust: packed image shipped %d of %d H2D bytes (%.0f%%), want at most %.0f%%",
				best.H2DBytes, base.H2DBytes,
				100*float64(best.H2DBytes)/float64(base.H2DBytes), 100*gpclustPackingCut)
		}
	}
	return nil
}

// validateAutotune enforces the auto-tuning PR's acceptance criteria on the
// auto-vs-fixed sweep.
func validateAutotune(points []bench.AutoTunePoint) error {
	if len(points) == 0 {
		return fmt.Errorf("no autotune points")
	}
	auto := map[string]bench.AutoTunePoint{}
	fixed := map[string]int{}
	first := map[string]bench.AutoTunePoint{}
	for i, p := range points {
		if p.Workload == "" || p.Setting == "" {
			return fmt.Errorf("autotune point %d has no workload/setting", i)
		}
		if p.VirtualNs <= 0 {
			return fmt.Errorf("autotune %s %q reports non-positive virtual total %.3f",
				p.Workload, p.Setting, p.VirtualNs)
		}
		if g, ok := first[p.Workload]; !ok {
			first[p.Workload] = p
		} else if p.Output != g.Output {
			return fmt.Errorf("autotune %s %q produced output %d, %q produced %d",
				p.Workload, p.Setting, p.Output, g.Setting, g.Output)
		}
		if p.Auto {
			if _, dup := auto[p.Workload]; dup {
				return fmt.Errorf("autotune workload %q has two auto points", p.Workload)
			}
			auto[p.Workload] = p
		} else {
			fixed[p.Workload]++
		}
		if p.PredictedNs > 0 {
			if p.SchedNs <= 0 {
				return fmt.Errorf("autotune %s %q prices a zero-length scheduler window",
					p.Workload, p.Setting)
			}
			if drift := math.Abs(p.PredictedNs-p.SchedNs) / p.SchedNs; drift > maxDriftFrac {
				return fmt.Errorf("autotune %s %q cost-model drift %.0f%% exceeds %.0f%% (predicted %.3fms, measured %.3fms)",
					p.Workload, p.Setting, 100*drift, 100*maxDriftFrac,
					p.PredictedNs/1e6, p.SchedNs/1e6)
			}
		}
	}
	for w := range first {
		a, ok := auto[w]
		if !ok {
			return fmt.Errorf("autotune workload %q has no auto point", w)
		}
		if fixed[w] == 0 {
			return fmt.Errorf("autotune workload %q has no fixed points to beat", w)
		}
		for _, p := range points {
			if p.Workload != w || p.Auto {
				continue
			}
			if a.VirtualNs > p.VirtualNs {
				return fmt.Errorf("autotune %s: auto virtual total %.3fms exceeds fixed %q at %.3fms",
					w, a.VirtualNs/1e6, p.Setting, p.VirtualNs/1e6)
			}
		}
	}
	return nil
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck BENCH_pr9.json")
		os.Exit(2)
	}
	blob, err := os.ReadFile(os.Args[1])
	fatal(err)
	var f benchFile
	fatal(json.Unmarshal(blob, &f))
	fatal(validate(f))

	byName := map[string]bench.PGraphBackendPoint{}
	for _, p := range f.Backends {
		byName[p.Backend] = p
	}
	fmt.Printf("benchcheck: ok — pipelined %.1fms < sequential %.1fms virtual, %d edges on every backend\n",
		byName["gpu pipelined"].VirtualNs/1e6, byName["gpu sequential"].VirtualNs/1e6, f.Backends[0].Edges)
	for _, p := range f.Autotune {
		if p.Auto {
			fmt.Printf("benchcheck: ok — %s auto plan (budget=%d, lanes=%d) at %.1fms virtual beats every fixed setting\n",
				p.Workload, p.BudgetWords, p.Lanes, p.VirtualNs/1e6)
		}
	}
	packing := map[string]map[bool]bench.PackingPoint{}
	for _, p := range f.Packing {
		if p.Packed == p.Fused { // the gate's two corners
			if packing[p.Workload] == nil {
				packing[p.Workload] = map[bool]bench.PackingPoint{}
			}
			packing[p.Workload][p.Packed] = p
		}
	}
	for _, w := range []string{"gpclust", "pgraph"} {
		base, best := packing[w][false], packing[w][true]
		fmt.Printf("benchcheck: ok — %s packed+fused %.1fms < unpacked %.1fms virtual, H2D bytes %.0f%% of unpacked\n",
			w, best.VirtualNs/1e6, base.VirtualNs/1e6,
			100*float64(best.H2DBytes)/float64(base.H2DBytes))
	}
	var lshExact bench.LSHPoint
	for _, p := range f.LSH {
		if p.Filter == "exact" {
			lshExact = p
		}
	}
	for _, p := range f.LSH {
		if p.Default {
			fmt.Printf("benchcheck: ok — lsh default %q: edge recall %.3f ≥ %.2f with %d candidates < exact's %d\n",
				p.Setting, p.EdgeRecall, lshRecallFloor, p.Candidates, lshExact.Candidates)
		}
		if p.Conservative {
			fmt.Printf("benchcheck: ok — %q bit-identical to the exact filter (%d candidates)\n",
				p.Setting, p.Candidates)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}
