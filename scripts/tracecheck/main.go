// Tracecheck validates Chrome-trace JSON files written by the -trace flags:
// each argument must parse as a JSON object whose "traceEvents" key is a
// present, non-null array of event objects (the null-traceEvents regression
// made Perfetto and chrome://tracing reject otherwise well-formed files).
// With -want-cats, the union of event categories must include every name in
// the comma-separated list.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type event struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
}

func check(path string, wantCats []string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not a JSON object: %w", err)
	}
	rawEvents, ok := doc["traceEvents"]
	if !ok {
		return fmt.Errorf("no traceEvents key")
	}
	if string(rawEvents) == "null" {
		return fmt.Errorf("traceEvents is null (must be an array, possibly empty)")
	}
	var events []event
	if err := json.Unmarshal(rawEvents, &events); err != nil {
		return fmt.Errorf("traceEvents is not an array of events: %w", err)
	}
	cats := map[string]bool{}
	n := 0
	for i, ev := range events {
		if ev.Ph == "" {
			return fmt.Errorf("event %d has no phase", i)
		}
		if ev.Ph == "M" {
			continue
		}
		n++
		cats[ev.Cat] = true
	}
	for _, want := range wantCats {
		if !cats[want] {
			return fmt.Errorf("no events with category %q (have %d events in %v)", want, n, keys(cats))
		}
	}
	fmt.Printf("tracecheck: %s ok (%d events, %d categories)\n", path, n, len(cats))
	return nil
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func main() {
	wantFlag := flag.String("want-cats", "", "comma-separated event categories that must appear")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-want-cats a,b] trace.json...")
		os.Exit(2)
	}
	var want []string
	if *wantFlag != "" {
		want = strings.Split(*wantFlag, ",")
	}
	for _, path := range flag.Args() {
		if err := check(path, want); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}
