#!/usr/bin/env sh
# Tier-1 gate: formatting, vet, the gpclint static-analysis suite, build,
# full test suite, the invariants-build sweep, fuzz smoke, and a race sweep
# of the concurrent packages (host-parallel backend, pGraph worker pool,
# device simulator). Run from the repository root; exits non-zero on any
# failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== gpclint"
go run ./cmd/gpclint ./...
go run ./cmd/gpclint -tags invariants ./...

echo "== gpclint -tests (determinism-critical packages, test files included)"
go run ./cmd/gpclint -tests ./internal/core ./internal/faults ./internal/minwise \
    ./internal/obs ./internal/sched ./internal/thrust ./internal/unionfind ./internal/pgraph \
    ./internal/serve
# gpusim runs in its own invocation: loading it as a test root next to
# packages whose tests import it makes the loader mix its test variant with
# the plain one and fail type-checking.
go run ./cmd/gpclint -tests ./internal/gpusim

echo "== gpclint fixture sanity (each positive fixture must fail the gate)"
for fixture in maprange globalrand wallclock atomicmix devmem devmemloop errcheck suppress \
    vclocktaint goroutine configdrift; do
    if go run ./cmd/gpclint "internal/lint/testdata/src/$fixture" >/dev/null 2>&1; then
        echo "gpclint found nothing in positive fixture $fixture" >&2
        exit 1
    fi
done

echo "== go build"
go build ./...

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

echo "== gpclint -json round-trip (artifact validated by lintcheck)"
go run ./cmd/gpclint -json ./... > "$tmp_dir/gpclint.jsonl"
go run ./scripts/lintcheck -clean "$tmp_dir/gpclint.jsonl"
go run ./cmd/gpclint -json internal/lint/testdata/src/devmemloop \
    > "$tmp_dir/gpclint-positive.jsonl" || true
go run ./scripts/lintcheck -nonzero "$tmp_dir/gpclint-positive.jsonl"

echo "== go test (with coverage profile)"
cover_out="$tmp_dir/cover.out"
go test -coverprofile="$cover_out" ./...

# Coverage floor: the seed baseline measured 77.6% total statement
# coverage; fail the gate if a change drops the suite below 75%.
echo "== coverage gate (floor 75%)"
total=$(go tool cover -func="$cover_out" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
awk -v t="$total" 'BEGIN {
    if (t + 0 < 75.0) { printf "coverage %.1f%% is below the 75%% floor\n", t; exit 1 }
    printf "coverage %.1f%% (floor 75%%)\n", t
}'

echo "== go test -tags invariants (runtime invariant sweep)"
go test -tags invariants ./internal/core/... ./internal/unionfind/... ./internal/gpusim/...

echo "== pgraph backend equivalence gate (GPU-SW must match host-SW bit for bit)"
go test -run 'TestGoldenPipelineBackends|TestGoldenCascadeConservative' .
go test -run 'TestGPUMatchesHostEdges|TestGPUSmallDeviceMemoryLimit|TestGPUPipelinedLowerVirtualTotal' ./internal/pgraph/

echo "== lsh filter equivalence gate (device LSH must match host; conservative cascade must match exact)"
go test -run 'TestLSHDeviceMatchesHost|TestCascadeConservativeMatchesExact|TestLSHFilterGraphsMatchHostGPU|TestLSHConservativeSupersetOfExact' ./internal/pgraph/

echo "== observability smoke (-trace/-metrics on both CLIs, trace JSON validated)"
go run ./cmd/genseq -mode seqs -n 150 -fasta "$tmp_dir/orfs.fa" -truth "$tmp_dir/truth.tsv"
go run ./cmd/pgraph -in "$tmp_dir/orfs.fa" -out "$tmp_dir/graph.txt" -gpu -pipeline \
    -trace "$tmp_dir/pgraph-trace.json" -metrics "$tmp_dir/pgraph-metrics.txt"
go run ./cmd/gpclust -in "$tmp_dir/graph.txt" -backend gpu -pipeline -c1 30 -c2 15 \
    -faults 'h2d op=2' -trace "$tmp_dir/gpclust-trace.json" \
    -metrics "$tmp_dir/gpclust-metrics.txt" -out "$tmp_dir/clusters.txt"
go run ./scripts/tracecheck -want-cats phases,host-cpu,compute,copy \
    "$tmp_dir/pgraph-trace.json"
go run ./scripts/tracecheck -want-cats phases,host-cpu,lane0,lane1,faults,recovery,compute,copy \
    "$tmp_dir/gpclust-trace.json"
grep -q '^pgraph_edges_total ' "$tmp_dir/pgraph-metrics.txt"
grep -q '^gpclust_tuples_total ' "$tmp_dir/gpclust-metrics.txt"
grep -q '^gpclust_faults_injected_total ' "$tmp_dir/gpclust-metrics.txt"
grep -q '^# EOF$' "$tmp_dir/gpclust-metrics.txt"

echo "== fuzz smoke (10s per target)"
go test -run='^$' -fuzz=FuzzRadixSort -fuzztime=10s ./internal/core/
go test -run='^$' -fuzz=FuzzPlanBatches -fuzztime=10s ./internal/sched/
go test -run='^$' -fuzz=FuzzSegmentedSort -fuzztime=10s ./internal/thrust/
go test -run='^$' -fuzz=FuzzPackResidues -fuzztime=10s ./internal/thrust/
go test -run='^$' -fuzz=FuzzUnionFind -fuzztime=10s ./internal/unionfind/
go test -run='^$' -fuzz=FuzzSWBatch -fuzztime=10s ./internal/pgraph/
go test -run='^$' -fuzz=FuzzLSHCandidates -fuzztime=10s ./internal/pgraph/
go test -run='^$' -fuzz=FuzzFaultSchedule -fuzztime=10s ./internal/faults/

echo "== serve SLO smoke (1000 concurrent clients, race detector on)"
go test -race -run TestServeSLO ./internal/serve/

echo "== go test -race (concurrent packages)"
go test -race ./internal/core/... ./internal/pgraph/... ./internal/gpusim/... ./internal/faults/... ./internal/sched/... ./internal/obs/... ./internal/unionfind/... ./internal/minwise/... ./internal/serve/...

echo "== ci.sh: all green"
