#!/usr/bin/env sh
# Tier-1 gate: formatting, vet, the gpclint static-analysis suite, build,
# full test suite, the invariants-build sweep, fuzz smoke, and a race sweep
# of the concurrent packages (host-parallel backend, pGraph worker pool,
# device simulator). Run from the repository root; exits non-zero on any
# failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== gpclint"
go run ./cmd/gpclint ./...
go run ./cmd/gpclint -tags invariants ./...

echo "== gpclint fixture sanity (each positive fixture must fail the gate)"
for fixture in maprange globalrand wallclock atomicmix devmem errcheck suppress; do
    if go run ./cmd/gpclint "internal/lint/testdata/src/$fixture" >/dev/null 2>&1; then
        echo "gpclint found nothing in positive fixture $fixture" >&2
        exit 1
    fi
done

echo "== go build"
go build ./...

echo "== go test (with coverage profile)"
cover_out="$(mktemp)"
trap 'rm -f "$cover_out"' EXIT
go test -coverprofile="$cover_out" ./...

# Coverage floor: the seed baseline measured 77.6% total statement
# coverage; fail the gate if a change drops the suite below 75%.
echo "== coverage gate (floor 75%)"
total=$(go tool cover -func="$cover_out" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
awk -v t="$total" 'BEGIN {
    if (t + 0 < 75.0) { printf "coverage %.1f%% is below the 75%% floor\n", t; exit 1 }
    printf "coverage %.1f%% (floor 75%%)\n", t
}'

echo "== go test -tags invariants (runtime invariant sweep)"
go test -tags invariants ./internal/core/... ./internal/unionfind/... ./internal/gpusim/...

echo "== pgraph backend equivalence gate (GPU-SW must match host-SW bit for bit)"
go test -run 'TestGoldenPipelineBackends' .
go test -run 'TestGPUMatchesHostEdges|TestGPUSmallDeviceMemoryLimit|TestGPUPipelinedLowerVirtualTotal' ./internal/pgraph/

echo "== fuzz smoke (10s per target)"
go test -run='^$' -fuzz=FuzzRadixSort -fuzztime=10s ./internal/core/
go test -run='^$' -fuzz=FuzzSegmentedSort -fuzztime=10s ./internal/thrust/
go test -run='^$' -fuzz=FuzzUnionFind -fuzztime=10s ./internal/unionfind/
go test -run='^$' -fuzz=FuzzSWBatch -fuzztime=10s ./internal/pgraph/
go test -run='^$' -fuzz=FuzzFaultSchedule -fuzztime=10s ./internal/faults/

echo "== go test -race (concurrent packages)"
go test -race ./internal/core/... ./internal/pgraph/... ./internal/gpusim/... ./internal/faults/...

echo "== ci.sh: all green"
