#!/usr/bin/env sh
# Tier-1 gate: formatting, vet, build, full test suite, and a race sweep of
# the concurrent packages (host-parallel backend, pGraph worker pool, device
# simulator). Run from the repository root; exits non-zero on any failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/core/... ./internal/pgraph/... ./internal/gpusim/...

echo "== ci.sh: all green"
