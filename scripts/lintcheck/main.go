// Command lintcheck validates a gpclint -json artifact: every line must be
// a well-formed finding or summary record, the summary must come last and
// exactly once, and its findings count must equal the number of finding
// lines. CI uses it to round-trip the machine-readable output — both on
// the clean whole-tree artifact (-clean: the summary must report zero) and
// on a positive fixture run (-nonzero: it must report at least one).
//
// Usage:
//
//	lintcheck [-clean | -nonzero] artifact.jsonl
//
// Exit status: 0 when the artifact is valid (and satisfies the requested
// count constraint), 1 otherwise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type record struct {
	Type     string `json:"type"`
	Rule     string `json:"rule"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Findings int    `json:"findings"`
	Packages int    `json:"packages"`
}

func main() {
	clean := flag.Bool("clean", false, "require the summary to report zero findings")
	nonzero := flag.Bool("nonzero", false, "require the summary to report at least one finding")
	flag.Parse()
	if flag.NArg() != 1 || (*clean && *nonzero) {
		fmt.Fprintln(os.Stderr, "usage: lintcheck [-clean | -nonzero] artifact.jsonl")
		os.Exit(1)
	}
	if err := validate(flag.Arg(0), *clean, *nonzero); err != nil {
		fmt.Fprintln(os.Stderr, "lintcheck:", err)
		os.Exit(1)
	}
}

func validate(path string, clean, nonzero bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() //gpclint:ignore unchecked-error read-only file, Close reports nothing actionable

	findings := 0
	var summary *record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if summary != nil {
			return fmt.Errorf("%s:%d: record after the summary", path, lineNo)
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
		switch rec.Type {
		case "finding":
			if rec.Rule == "" || rec.File == "" || rec.Message == "" || rec.Line < 0 {
				return fmt.Errorf("%s:%d: finding missing rule/file/message", path, lineNo)
			}
			findings++
		case "summary":
			s := rec
			summary = &s
		default:
			return fmt.Errorf("%s:%d: unknown record type %q", path, lineNo, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	switch {
	case summary == nil:
		return fmt.Errorf("%s: no summary record — the run never finished", path)
	case summary.Findings != findings:
		return fmt.Errorf("%s: summary claims %d findings, artifact holds %d", path, summary.Findings, findings)
	case summary.Packages <= 0:
		return fmt.Errorf("%s: summary reports %d packages", path, summary.Packages)
	case clean && findings != 0:
		return fmt.Errorf("%s: expected a clean run, artifact holds %d finding(s)", path, findings)
	case nonzero && findings == 0:
		return fmt.Errorf("%s: expected findings, artifact holds none", path)
	}
	return nil
}
