#!/usr/bin/env sh
# Benchmark trajectory: runs the key testing.B benchmarks plus the pGraph
# verification-backend ablation, the auto-tuned-vs-fixed batch-plan
# ablation, the packed-image/kernel-fusion ablation, and the LSH
# candidate-filter ablation, and assembles BENCH_pr9.json in the repo root,
# recording both virtual-clock and wall-clock numbers so later PRs can diff
# performance against this one. Run from the repository root.
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pr9.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== go benchmarks (1 iteration each; ns/op is wall time on this host)"
go test -run='^$' -bench \
    'BenchmarkTable1_20KGraph$|BenchmarkClusterSerial_20K$|BenchmarkClusterParallel_W4$|BenchmarkGPU_PipelinedVsSequentialBatches$' \
    -benchtime 1x . | tee "$tmp/root.bench"
go test -run='^$' -bench 'BenchmarkBuild250$|BenchmarkPGraphGPU$|BenchmarkPGraphGPUPipelined$' \
    -benchtime 1x ./internal/pgraph/ | tee "$tmp/pgraph.bench"

echo "== pGraph verification-backend ablation (virtual clock)"
go run ./cmd/experiments -exp pgraph -benchjson "$tmp/backends.json"

echo "== auto-tuned vs fixed batch plans (virtual clock)"
go run ./cmd/experiments -exp autotune -benchjson "$tmp/autotune.json"

echo "== packed device images and kernel fusion (virtual clock)"
go run ./cmd/experiments -exp packing -benchjson "$tmp/packing.json"

echo "== LSH banding candidate filter (virtual clock)"
go run ./cmd/experiments -exp lsh -benchjson "$tmp/lsh.json"

awk '/^Benchmark/ {
    sub(/-[0-9]+$/, "", $1)
    printf "%s    {\"name\": \"%s\", \"iterations\": %s, \"wall_ns_per_op\": %s}", sep, $1, $2, $3
    sep = ",\n"
} END { print "" }' "$tmp/root.bench" "$tmp/pgraph.bench" > "$tmp/go_bench.json"

{
    echo '{'
    echo '  "pr": 9,'
    echo '  "go_bench": ['
    cat "$tmp/go_bench.json"
    echo '  ],'
    printf '  "pgraph_backends": '
    sed -e 's/^/  /' -e '1s/^  //' "$tmp/backends.json" | sed -e '$s/$/,/'
    printf '  "autotune": '
    sed -e 's/^/  /' -e '1s/^  //' "$tmp/autotune.json" | sed -e '$s/$/,/'
    printf '  "packing": '
    sed -e 's/^/  /' -e '1s/^  //' "$tmp/packing.json" | sed -e '$s/$/,/'
    printf '  "lsh": '
    sed -e 's/^/  /' -e '1s/^  //' "$tmp/lsh.json"
    echo '}'
} > "$out"

# Sanity-check the JSON and the acceptance criteria: the pipelined GPU
# backend must beat the sequential one, the auto-tuned plan must beat every
# fixed setting with the cost model inside its drift gate, the packed+fused
# layout must beat the unpacked one while shipping fewer bytes, and the LSH
# sweep must hold the conservative bit-identity and the default shape's
# recall-with-fewer-candidates operating point.
go run ./scripts/benchcheck "$out"
echo "== bench.sh: wrote $out"
