// Quickstart: generate a synthetic protein-similarity graph with planted
// dense subgraphs, cluster it with gpClust on the simulated Tesla K20, and
// print the largest families with the Table I-style timing breakdown.
package main

import (
	"fmt"
	"log"

	"gpclust"
)

func main() {
	// A 20K-vertex graph shaped like the paper's smaller input.
	g, truth := gpclust.Planted(gpclust.DefaultPlantedConfig(20000))
	fmt.Printf("input: %s\n", gpclust.ComputeGraphStats(g))
	fmt.Printf("planted: %d families in %d super-families\n\n",
		truth.NumFamilies, truth.NumSupers)

	// The paper's published parameters: s1=2, c1=200, s2=2, c2=100.
	opts := gpclust.DefaultOptions()
	dev := gpclust.NewK20()
	res, err := gpclust.ClusterGPU(g, dev, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gpClust reported %d clusters\n", res.NumClusters())
	fmt.Printf("timings (virtual clock): %s\n\n", res.Timings.String())

	fmt.Println("largest clusters (size ≥ 20):")
	for i, cl := range res.Clustering.ClustersOfSizeAtLeast(20) {
		if i == 10 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  #%d: %d members, density %.2f\n",
			i+1, len(cl), gpclust.Density(g, cl))
	}

	// The serial reference produces the identical clustering.
	serial, err := gpclust.Cluster(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserial pClust: %d clusters in %.1fs virtual (speedup %.1fX total)\n",
		serial.NumClusters(),
		serial.Timings.TotalNs/1e9,
		serial.Timings.TotalNs/res.Timings.TotalNs)
}
