// Gputuning explores the CPU-GPU pipeline knobs the paper discusses:
// the device batch budget of Algorithm 2 (small device memory forces more
// batches and more host↔device traffic) and the synchronous-vs-asynchronous
// transfer question the paper leaves as future work ("the data transfer
// overhead ... can be eliminated through asynchronous data transfer
// primitives provided by CUDA C/C++"). All timings are virtual-clock.
package main

import (
	"fmt"
	"log"

	"gpclust"
)

func main() {
	g, _ := gpclust.Planted(gpclust.DefaultPlantedConfig(20000))
	fmt.Printf("input: %s\n\n", gpclust.ComputeGraphStats(g))

	base := gpclust.DefaultOptions()
	base.C1, base.C2 = 100, 50

	fmt.Println("batch-budget sweep (synchronous transfers):")
	fmt.Printf("%-16s %8s %8s %10s %10s %10s %10s\n",
		"batch (words)", "batches", "splits", "GPU s", "H2D s", "D2H s", "total s")
	for _, words := range []int{0, 4_000_000, 400_000, 80_000, 20_000} {
		o := base
		o.BatchWords = words
		dev := gpclust.NewK20()
		res, err := gpclust.ClusterGPU(g, dev, o)
		if err != nil {
			log.Fatal(err)
		}
		label := "auto"
		if words > 0 {
			label = fmt.Sprintf("%d", words)
		}
		t := res.Timings
		fmt.Printf("%-16s %8d %8d %10.3f %10.3f %10.3f %10.3f\n",
			label, res.Pass1.Batches, res.Pass1.SplitLists,
			t.GPUNs/1e9, t.H2DNs/1e9, t.D2HNs/1e9, t.TotalNs/1e9)
	}

	fmt.Println("\nsynchronous vs asynchronous transfers:")
	for _, async := range []bool{false, true} {
		o := base
		o.AsyncTransfer = async
		dev := gpclust.NewK20()
		res, err := gpclust.ClusterGPU(g, dev, o)
		if err != nil {
			log.Fatal(err)
		}
		mode := "sync (paper's Thrust implementation)"
		if async {
			mode = "async (paper's proposed improvement)"
		}
		fmt.Printf("  %-40s total %7.3fs  (GPU %.3fs, D2H %.3fs)\n",
			mode, res.Timings.TotalNs/1e9, res.Timings.GPUNs/1e9, res.Timings.D2HNs/1e9)
	}

	// Device metrics show why graph kernels underuse the GPU: uncoalesced
	// adjacency-list access (Section III-C's motivation).
	dev := gpclust.NewK20()
	if _, err := gpclust.ClusterGPU(g, dev, base); err != nil {
		log.Fatal(err)
	}
	m := dev.Metrics()
	fmt.Printf("\ndevice metrics: coalescing efficiency %.1f%%, divergence overhead %.1f%%, %d kernel launches\n",
		100*m.CoalescingEfficiency(), 100*m.DivergenceOverhead(), m.KernelLaunches)
}
