// Shotgun runs the complete pipeline the paper's introduction describes,
// starting from raw DNA: environmental DNA is shredded into shotgun reads,
// the reads are translated in six frames to extract putative ORFs, the ORFs
// become a homology graph (pGraph), and gpClust clusters the graph into
// protein-family core sets — which are then checked against the planted
// families that generated the DNA.
package main

import (
	"fmt"
	"log"

	"gpclust"
)

func main() {
	// 1. A microbial community: planted protein families.
	mgCfg := gpclust.DefaultMetagenomeConfig(400)
	mgCfg.FragmentMin, mgCfg.FragmentMax = 1, 1 // shredding happens at the DNA level below
	mg, err := gpclust.GenerateMetagenome(mgCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community: %d proteins in %d families\n", len(mg.Seqs), mg.NumFamilies)

	// 2. Shotgun sequencing: DNA fragments of a few hundred base pairs
	//    ("the shotgun sequencing approach shreds the DNA pool into
	//    millions of tiny fragments", §I), with Sanger-grade error rates —
	//    the greedy assembler's mismatch budget absorbs them.
	sc := gpclust.DefaultShotgunConfig()
	sc.Coverage = 3.5
	reads, err := gpclust.SimulateShotgun(mg, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shotgun: %d reads of %d bases\n", len(reads), sc.ReadLen)

	// 3. Assembly: greedy overlap merging lengthens the coding regions
	//    before gene calling ("assembled, annotated for genetic regions").
	contigs, err := gpclust.Assemble(reads, gpclust.DefaultAssembleConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembly: %d contigs, N50 %d bases (reads were %d)\n",
		len(contigs), gpclust.ContigN50(contigs), gpclust.DefaultShotgunConfig().ReadLen)

	// 4. Six-frame translation → putative ORFs.
	orfs := gpclust.ORFsFromContigs(contigs, 60)
	fmt.Printf("translation: %d ORFs of ≥ 60 residues\n", len(orfs))

	// 5. Homology graph (pGraph: exact-match filter + Smith–Waterman).
	g, pst, err := gpclust.BuildHomologyGraph(orfs, gpclust.DefaultPGraphConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pgraph: %d candidates -> %d edges; %s\n",
		pst.Candidates, pst.Edges, gpclust.ComputeGraphStats(g))

	// 6. gpClust on the simulated K20.
	opts := gpclust.DefaultOptions()
	opts.C1, opts.C2 = 80, 40
	dev := gpclust.NewK20()
	res, err := gpclust.ClusterGPU(g, dev, opts)
	if err != nil {
		log.Fatal(err)
	}
	clusters := res.Clustering.ClustersOfSizeAtLeast(5)
	fmt.Printf("gpClust: %d clusters of ≥ 5 ORFs (%s)\n",
		len(clusters), res.Timings.String())

	// 7. Sanity: each clustered ORF should trace back to one planted
	//    family. Assign clustered ORFs to their best-aligning planted
	//    family (one representative per family) and check cluster purity.
	rep := map[int32]int{}
	for i, f := range mg.Family {
		if f >= 0 {
			if _, ok := rep[f]; !ok {
				rep[f] = i
			}
		}
	}
	assign := func(orf gpclust.Sequence) int32 {
		bestFam, best := int32(-1), 0
		for f, ri := range rep {
			if sc := gpclust.AlignScore(orf.Residues, mg.Seqs[ri].Residues); sc > best {
				best, bestFam = sc, f
			}
		}
		if best < len(orf.Residues) { // under ~1 point per residue: noise
			return -1
		}
		return bestFam
	}
	pure, artifact, mixed := 0, 0, 0
	for _, cl := range clusters {
		counts := map[int32]int{}
		total := 0
		for _, v := range cl {
			if f := assign(orfs[v]); f >= 0 {
				counts[f]++
				total++
			}
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		switch {
		case total == 0:
			// No member aligns to any real family: a wrong-reading-frame
			// artifact cluster — six-frame translation emits consistent
			// off-frame peptides from homologous DNA, and the pipeline
			// faithfully clusters them (real metagenomics pipelines filter
			// these with gene-calling models, outside this paper's scope).
			artifact++
		case float64(best) >= 0.7*float64(total):
			pure++
		default:
			mixed++
		}
	}
	fmt.Printf("validation: %d single-family clusters (all %d planted families), %d off-frame artifact clusters, %d mixed\n",
		pure, mg.NumFamilies, artifact, mixed)
}
