// Webcommunities revisits the Shingling heuristic's original application:
// Gibson, Kumar & Tomkins (VLDB 2005) developed it to discover large dense
// subgraphs — link spam farms and communities — in host-level web graphs.
// This example builds a synthetic web-host graph (dense link farms planted
// in a sparse background), runs both Phase III reporting modes, and shows
// how the overlapping mode surfaces hosts that belong to several
// communities while the union-find mode partitions them.
package main

import (
	"fmt"
	"log"

	"gpclust"
)

func main() {
	// A host graph: link farms are near-cliques; the background is sparse.
	cfg := gpclust.PlantedConfig{
		NumVertices:      30000,
		MinFamily:        30,
		MaxFamily:        600,
		Alpha:            2.1,
		FamilyFraction:   0.4, // most hosts are not in any farm
		IntraDensity:     0.85,
		FamiliesPerSuper: 1,
		NoiseEdges:       120000,
		Seed:             7,
	}
	g, truth := gpclust.Planted(cfg)
	fmt.Printf("web graph: %s (%d planted farms)\n\n", gpclust.ComputeGraphStats(g), truth.NumFamilies)

	opts := gpclust.DefaultOptions()
	opts.S1, opts.C1 = 3, 120 // denser background noise wants a stricter shingle
	opts.S2, opts.C2 = 2, 60

	dev := gpclust.NewK20()
	partition, err := gpclust.ClusterGPU(g, dev, opts)
	if err != nil {
		log.Fatal(err)
	}
	farms := partition.Clustering.ClustersOfSizeAtLeast(cfg.MinFamily)
	fmt.Printf("union-find mode: %d clusters total, %d of farm size (≥ %d)\n",
		partition.NumClusters(), len(farms), cfg.MinFamily)
	recovered := 0
	for _, cl := range farms {
		if gpclust.Density(g, cl) > 0.5 {
			recovered++
		}
	}
	fmt.Printf("  %d of them dense (density > 0.5) — recovered link farms\n\n", recovered)

	opts.Mode = gpclust.ReportOverlapping
	dev2 := gpclust.NewK20()
	cover, err := gpclust.ClusterGPU(g, dev2, opts)
	if err != nil {
		log.Fatal(err)
	}
	seen := map[uint32]int{}
	for _, cl := range cover.Clustering.Clusters {
		for _, v := range cl {
			seen[v]++
		}
	}
	multi := 0
	for _, c := range seen {
		if c > 1 {
			multi++
		}
	}
	fmt.Printf("overlapping mode: %d components; %d hosts appear in more than one community\n",
		cover.NumClusters(), multi)
	fmt.Println("(the paper picks the union-find mode: \"no vertex belong[s to] two different clusters\")")
}
