// Metagenome walks the paper's entire pipeline on synthetic data: generate
// a metagenomic ORF sample with planted protein families (the GOS-data
// stand-in), build its homology graph the pGraph way (suffix-structure
// filter + Smith–Waterman), cluster with gpClust and with the GOS
// k-neighbor baseline, and score both against the planted benchmark with
// the paper's PPV/NPV/SP/SE and density metrics (Tables III–IV).
package main

import (
	"fmt"
	"log"

	"gpclust"
)

func main() {
	// 1. Sequence sample: ancestral families, mutated members, shotgun
	//    fragments (Section I's data-generation story).
	mgCfg := gpclust.DefaultMetagenomeConfig(1200)
	mg, err := gpclust.GenerateMetagenome(mgCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metagenome: %d ORFs, %d planted families, %d super-families\n",
		len(mg.Seqs), mg.NumFamilies, mg.NumSupers)

	// 2. Homology graph (the pGraph phase).
	g, pst, err := gpclust.BuildHomologyGraph(mg.Seqs, gpclust.DefaultPGraphConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pgraph: %d candidate pairs -> %d verified edges\n", pst.Candidates, pst.Edges)
	fmt.Printf("graph: %s\n", gpclust.ComputeGraphStats(g))

	// 2b. The same graph built with the batched GPU Smith–Waterman backend:
	//     bit-identical edge set, Table-I-style component split.
	gpuCfg := gpclust.DefaultPGraphConfig()
	gpuCfg.GPU = true
	gpuCfg.GPUPipeline = true
	gGPU, gst, err := gpclust.BuildHomologyGraph(mg.Seqs, gpuCfg)
	if err != nil {
		log.Fatal(err)
	}
	if gst.Edges != pst.Edges {
		log.Fatalf("GPU-SW backend accepted %d edges, host accepted %d", gst.Edges, pst.Edges)
	}
	_ = gGPU
	fmt.Printf("pgraph-gpu: CPU filter %.2fs | GPU SW %.2fs | Data_c→g %.2fs | Data_g→c %.2fs | total %.2fs virtual (%d batches)\n\n",
		gst.FilterNs/1e9, gst.AlignNs/1e9, gst.H2DNs/1e9, gst.D2HNs/1e9, gst.TotalNs/1e9, gst.GPUBatches)

	// 3. Cluster with gpClust on the simulated K20.
	opts := gpclust.DefaultOptions()
	opts.C1, opts.C2 = 100, 50 // plenty for a 1.2K-sequence sample
	dev := gpclust.NewK20()
	ours, err := gpclust.ClusterGPU(g, dev, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gpClust: %d clusters, %s\n", ours.NumClusters(), ours.Timings.String())

	// 4. The GOS k-neighbor baseline (k scaled to the sample's density).
	gosOpt := gpclust.DefaultGOSOptions()
	gosOpt.K = 4
	gosClusters, err := gpclust.ClusterGOS(g, gosOpt)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Score both against the planted super-families (the benchmark's
	//    role), over clusters of at least minSize members.
	const minSize = 10
	n := g.NumVertices()
	bench := mg.SuperFamily
	score := func(name string, clusters [][]uint32) {
		kept := clusters[:0:0]
		for _, cl := range clusters {
			if len(cl) >= minSize {
				kept = append(kept, cl)
			}
		}
		labels := gpclust.LabelsFromClusters(kept, n, minSize)
		c := gpclust.PairConfusion(labels, bench, n)
		mean, std := gpclust.DensityStats(g, kept)
		fmt.Printf("%-8s PPV=%6.2f%% NPV=%6.2f%% SP=%6.2f%% SE=%6.2f%%  density=%.2f±%.2f  (%d clusters ≥ %d)\n",
			name, 100*c.PPV(), 100*c.NPV(), 100*c.Specificity(), 100*c.Sensitivity(),
			mean, std, len(kept), minSize)
	}
	// Extended baseline: Markov Clustering, the conventional choice for
	// protein families (TribeMCL) — the context that makes the paper's use
	// of Shingling unusual.
	mclClusters, err := gpclust.ClusterMCL(g, gpclust.DefaultMCLOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	score("gpClust", ours.Clustering.Clusters)
	score("GOS", gosClusters)
	score("MCL", mclClusters)
}
