package gpclust_test

import (
	"bytes"
	"reflect"
	"testing"

	"gpclust"
	"gpclust/internal/seq"
)

// TestGoldenPipelineBackends is the end-to-end golden gate over the full
// FASTA → homology graph → families pipeline: the graph is built with both
// Smith–Waterman backends (host worker pool and the batched GPU kernel,
// forced through several device batches), and each graph is clustered with
// Cluster, ClusterParallel and ClusterGPU. All builds must agree on the
// graph and all clusterings must agree on the partition.
func TestGoldenPipelineBackends(t *testing.T) {
	mgCfg := gpclust.DefaultMetagenomeConfig(250)
	mgCfg.Seed = 7
	mg, err := gpclust.GenerateMetagenome(mgCfg)
	if err != nil {
		t.Fatal(err)
	}

	// FASTA round trip, so the golden path exercises the on-disk format the
	// cmd tools consume.
	var fasta bytes.Buffer
	if err := seq.WriteFASTA(&fasta, mg.Seqs); err != nil {
		t.Fatal(err)
	}
	seqs, err := seq.ReadFASTA(&fasta)
	if err != nil {
		t.Fatal(err)
	}

	hostCfg := gpclust.DefaultPGraphConfig()
	gHost, hostStats, err := gpclust.BuildHomologyGraph(seqs, hostCfg)
	if err != nil {
		t.Fatal(err)
	}
	if hostStats.Edges == 0 {
		t.Fatal("host build produced no edges; golden test needs a non-trivial graph")
	}

	gpuCfg := hostCfg
	gpuCfg.GPU = true
	gpuCfg.GPUPipeline = true
	gpuCfg.GPUBatchWords = 8_000 // force several batches through the scheduler
	gGPU, gpuStats, err := gpclust.BuildHomologyGraph(seqs, gpuCfg)
	if err != nil {
		t.Fatal(err)
	}
	if gpuStats.GPUBatches < 2 {
		t.Fatalf("want a multi-batch GPU build, got %d batches", gpuStats.GPUBatches)
	}
	if !reflect.DeepEqual(gHost.Offsets, gGPU.Offsets) || !reflect.DeepEqual(gHost.Adj, gGPU.Adj) {
		t.Fatal("GPU-SW graph differs from host-SW graph")
	}

	opts := gpclust.DefaultOptions()
	opts.C1, opts.C2 = 60, 30

	var want [][]uint32
	for _, g := range map[string]*gpclust.Graph{"host-SW": gHost, "gpu-SW": gGPU} {
		serial, err := gpclust.Cluster(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		parOpts := opts
		parOpts.Workers = 3
		par, err := gpclust.ClusterParallel(g, parOpts)
		if err != nil {
			t.Fatal(err)
		}
		gpu, err := gpclust.ClusterGPU(g, gpclust.NewK20(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = serial.Clustering.Clusters
			if len(want) == 0 {
				t.Fatal("no clusters; golden test needs a non-trivial partition")
			}
		}
		for name, r := range map[string]*gpclust.Result{"Cluster": serial, "ClusterParallel": par, "ClusterGPU": gpu} {
			if !reflect.DeepEqual(r.Clustering.Clusters, want) {
				t.Fatalf("%s partition diverged from the golden partition", name)
			}
		}
	}
}
